//! Mask rules and violation records.

use cardopc_geometry::Point;
use std::fmt;

/// The curvilinear mask rule set of §III-F (after Bork et al. \[34\]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrcRules {
    /// Minimum spacing `C_space` between distinct shapes, nm.
    pub min_space: f64,
    /// Minimum width `C_width` of any shape, nm.
    pub min_width: f64,
    /// Minimum area `C_area` of any shape, nm².
    pub min_area: f64,
    /// Maximum absolute curvature `C_curv`, 1/nm.
    pub max_curvature: f64,
}

impl Default for MrcRules {
    /// Wafer-scale defaults in the regime of the paper's testcases:
    /// 25 nm spacing, 40 nm width, 1500 nm² area, and a 15 nm minimum
    /// radius of curvature.
    fn default() -> Self {
        MrcRules {
            min_space: 25.0,
            min_width: 40.0,
            min_area: 1500.0,
            max_curvature: 1.0 / 15.0,
        }
    }
}

impl MrcRules {
    /// Rule set for masks that carry sub-resolution assist features (e.g.
    /// ILT-fitted masks, §III-G): SRAFs are legitimately narrow and small,
    /// so the limits sit near the mask writer's resolution rather than the
    /// main-feature scale — 16 nm width/space, 600 nm² area, 6 nm minimum
    /// curvature radius.
    pub fn sraf_scale() -> Self {
        MrcRules {
            min_space: 16.0,
            min_width: 16.0,
            min_area: 600.0,
            max_curvature: 1.0 / 6.0,
        }
    }

    /// Rule set calibrated for the synthetic 45-nm-node OPC testcases of
    /// this reproduction: 70 nm main features whose spline corners round
    /// to ≈4 nm radius, and ≈40 nm-wide stadium-shaped SRAFs. The limits are
    /// satisfiable by a well-formed mask, so remaining violations indicate
    /// genuine defects (cusps, pinches, bridges).
    pub fn opc_node() -> Self {
        MrcRules {
            min_space: 18.0,
            min_width: 25.0,
            min_area: 800.0,
            max_curvature: 1.0 / 3.0,
        }
    }

    /// Validates that every limit is positive and finite.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an invalid rule set; rules are
    /// build-time configuration, not runtime data.
    pub fn assert_valid(&self) {
        assert!(
            self.min_space > 0.0 && self.min_space.is_finite(),
            "min_space must be positive"
        );
        assert!(
            self.min_width > 0.0 && self.min_width.is_finite(),
            "min_width must be positive"
        );
        assert!(
            self.min_area > 0.0 && self.min_area.is_finite(),
            "min_area must be positive"
        );
        assert!(
            self.max_curvature > 0.0 && self.max_curvature.is_finite(),
            "max_curvature must be positive"
        );
    }
}

/// The rule a violation breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Two shapes closer than `C_space`.
    Spacing,
    /// A shape narrower than `C_width`.
    Width,
    /// A shape smaller than `C_area`.
    Area,
    /// Local curvature above `C_curv`.
    Curvature,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Spacing => "spacing",
            ViolationKind::Width => "width",
            ViolationKind::Area => "area",
            ViolationKind::Curvature => "curvature",
        };
        f.write_str(s)
    }
}

/// One mask rule violation, located on a specific shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// Which rule is broken.
    pub kind: ViolationKind,
    /// Index of the offending shape in the checked slice.
    pub shape: usize,
    /// Spline segment index nearest to the violation (0 for area).
    pub segment: usize,
    /// Where on the mask the violation sits.
    pub location: Point,
    /// Unit outward normal of the mask boundary at the violation site
    /// (zero for area violations, which have no boundary direction).
    pub normal: Point,
    /// Measured value (distance, width, area or |curvature|).
    pub value: f64,
    /// The rule limit that was violated.
    pub limit: f64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation on shape {} at {}: {:.3} vs limit {:.3}",
            self.kind, self.shape, self.location, self.value, self.limit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        MrcRules::default().assert_valid();
    }

    #[test]
    #[should_panic(expected = "min_space")]
    fn invalid_space_panics() {
        MrcRules {
            min_space: -1.0,
            ..MrcRules::default()
        }
        .assert_valid();
    }

    #[test]
    #[should_panic(expected = "max_curvature")]
    fn invalid_curvature_panics() {
        MrcRules {
            max_curvature: f64::NAN,
            ..MrcRules::default()
        }
        .assert_valid();
    }

    #[test]
    fn violation_display() {
        let v = Violation {
            kind: ViolationKind::Spacing,
            shape: 2,
            segment: 1,
            location: Point::new(1.0, 2.0),
            normal: Point::new(0.0, 1.0),
            value: 10.0,
            limit: 25.0,
        };
        let s = v.to_string();
        assert!(s.contains("spacing"));
        assert!(s.contains("shape 2"));
        assert_eq!(ViolationKind::Curvature.to_string(), "curvature");
    }
}
