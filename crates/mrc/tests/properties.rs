//! Property-based tests for mask rule checking.

use cardopc_geometry::Point;
use cardopc_mrc::{AreaPolicy, MrcChecker, MrcResolver, MrcRules, ResolveConfig, ViolationKind};
use cardopc_spline::CardinalSpline;
use proptest::prelude::*;

fn circle(cx: f64, cy: f64, r: f64, n: usize) -> CardinalSpline {
    let pts = (0..n)
        .map(|i| {
            let th = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(cx + r * th.cos(), cy + r * th.sin())
        })
        .collect();
    CardinalSpline::closed(pts, 0.5).expect("valid circle")
}

fn square(x0: f64, y0: f64, w: f64, h: f64) -> CardinalSpline {
    CardinalSpline::closed(
        vec![
            Point::new(x0, y0),
            Point::new(x0 + w, y0),
            Point::new(x0 + w, y0 + h),
            Point::new(x0, y0 + h),
        ],
        0.0,
    )
    .expect("valid square")
}

proptest! {
    /// The spacing verdict between two squares agrees with their true gap:
    /// gap < limit ⟹ violation, gap comfortably above ⟹ clean.
    #[test]
    fn spacing_agrees_with_true_gap(gap in 2.0..80.0f64) {
        let rules = MrcRules::default();
        let shapes = [
            square(0.0, 0.0, 120.0, 120.0),
            square(120.0 + gap, 0.0, 120.0, 120.0),
        ];
        let checker = MrcChecker::new(rules);
        let spacing = checker.check_spacing(&shapes);
        if gap < rules.min_space - 1.0 {
            prop_assert!(!spacing.is_empty(), "gap {} should violate", gap);
        } else if gap > rules.min_space + 1.0 {
            prop_assert!(spacing.is_empty(), "gap {} should be clean: {:?}",
                         gap, &spacing[..spacing.len().min(2)]);
        }
        // Reported values never exceed the limit.
        for v in &spacing {
            prop_assert!(v.value <= rules.min_space + 1e-6);
        }
    }

    /// Width verdict follows the bar thickness.
    #[test]
    fn width_agrees_with_bar_thickness(thickness in 10.0..100.0f64) {
        let rules = MrcRules::default();
        let shapes = [square(0.0, 0.0, 400.0, thickness)];
        let checker = MrcChecker::new(rules);
        let width = checker.check_width(&shapes);
        if thickness < rules.min_width - 1.0 {
            prop_assert!(!width.is_empty(), "thickness {} should violate", thickness);
        } else if thickness > rules.min_width + 1.0 {
            prop_assert!(width.is_empty(), "thickness {} should be clean", thickness);
        }
    }

    /// Curvature verdict on circles matches 1/r analytically.
    #[test]
    fn curvature_agrees_with_circle_radius(r in 5.0..120.0f64) {
        let rules = MrcRules::default();
        let checker = MrcChecker::new(rules);
        let shapes = [circle(300.0, 300.0, r, 24)];
        let vs = checker.check_curvature(&shapes);
        let kappa = 1.0 / r;
        if kappa > rules.max_curvature * 1.2 {
            prop_assert!(!vs.is_empty(), "radius {} should violate curvature", r);
        } else if kappa < rules.max_curvature * 0.8 {
            prop_assert!(vs.is_empty(), "radius {} should be clean", r);
        }
    }

    /// Area verdict matches the analytic circle area.
    #[test]
    fn area_agrees_with_circle_area(r in 10.0..60.0f64) {
        let rules = MrcRules::default();
        let checker = MrcChecker::new(rules);
        let shapes = [circle(300.0, 300.0, r, 32)];
        let vs = checker.check_area(&shapes);
        let area = std::f64::consts::PI * r * r;
        if area < rules.min_area * 0.9 {
            prop_assert!(!vs.is_empty());
        } else if area > rules.min_area * 1.1 {
            prop_assert!(vs.is_empty());
        }
    }

    /// Resolving never increases the violation count, and removed shapes
    /// only occur under the RemoveShape policy.
    #[test]
    fn resolve_never_increases_violations(gap in 5.0..20.0f64) {
        let rules = MrcRules::default();
        let mut shapes = vec![
            square(0.0, 0.0, 150.0, 150.0),
            square(150.0 + gap, 0.0, 150.0, 150.0),
        ];
        let resolver = MrcResolver::new(rules, ResolveConfig::default());
        let report = resolver.resolve(&mut shapes);
        prop_assert!(report.remaining.len() <= report.initial_violations);
        prop_assert_eq!(report.shapes_removed, 0);
        prop_assert_eq!(shapes.len(), 2);
    }

    /// RemoveShape policy drops exactly the shapes below the area limit.
    #[test]
    fn remove_policy_drops_only_specks(n_specks in 0usize..4, n_big in 1usize..4) {
        let rules = MrcRules::default();
        let mut shapes = Vec::new();
        for i in 0..n_big {
            shapes.push(square(i as f64 * 400.0, 0.0, 200.0, 200.0));
        }
        for i in 0..n_specks {
            shapes.push(square(i as f64 * 400.0, 600.0, 25.0, 25.0));
        }
        let resolver = MrcResolver::new(
            rules,
            ResolveConfig { area_policy: AreaPolicy::RemoveShape, ..ResolveConfig::default() },
        );
        let report = resolver.resolve(&mut shapes);
        prop_assert_eq!(report.shapes_removed, n_specks);
        prop_assert_eq!(shapes.len(), n_big);
    }

    /// Violations always carry a unit (or zero) normal and a value below
    /// the limit they break (except curvature, which exceeds it).
    #[test]
    fn violation_records_are_consistent(gap in 3.0..20.0f64, thickness in 12.0..35.0f64) {
        let rules = MrcRules::default();
        let shapes = [
            square(0.0, 300.0, 400.0, thickness),
            square(0.0, 0.0, 150.0, 150.0),
            square(150.0 + gap, 0.0, 150.0, 150.0),
        ];
        let checker = MrcChecker::new(rules);
        for v in checker.check(&shapes) {
            let n = v.normal.norm();
            prop_assert!(n < 1e-9 || (n - 1.0).abs() < 1e-9);
            match v.kind {
                ViolationKind::Curvature => prop_assert!(v.value > v.limit),
                _ => prop_assert!(v.value < v.limit + 1e-6),
            }
            prop_assert!(v.shape < shapes.len());
        }
    }
}
