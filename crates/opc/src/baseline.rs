//! Rectilinear model-based OPC baselines.
//!
//! Two Manhattan segment-movement baselines stand in for the tools the
//! paper compares against (DESIGN.md substitutions 2–3):
//!
//! * **Calibre-like** ([`RectOpcConfig::calibre_like_via`] /
//!   [`RectOpcConfig::calibre_like_metal`]): corner-refined dissection and
//!   step decay — a competent classic OPC tuned to its strongest settings
//!   on this engine,
//! * **SimpleOPC** ([`RectOpcConfig::simple`]): uniform dissection, no
//!   smoothing, no decay — the basic model-based OPC of the OpenILT
//!   extension [45].
//!
//! Both move dissected edge segments along their outward normals by the
//! clamped EPE feedback of Eq. (6) and rebuild the polygon from the
//! shifted segment support lines (with jogs where neighbouring segments
//! are parallel).

use crate::config::OpcConfig;
use crate::dissect::{dissect_polygon, DissectedSegment};
use crate::eval::{evaluate_mask, Evaluation, MeasureConvention};
use crate::OpcError;
use cardopc_geometry::{Point, Polygon};
use cardopc_layout::Clip;
use cardopc_litho::{epe_at, rasterize, LithoEngine, MeasurePoint};

/// Configuration of the rectilinear baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct RectOpcConfig {
    /// Corner dissection length; ignored when `corner_refine` is off.
    pub l_c: f64,
    /// Uniform dissection length.
    pub l_u: f64,
    /// Maximum segment move per iteration, nm.
    pub move_step: f64,
    /// Iteration budget.
    pub iterations: usize,
    /// Step decay point (set `>= iterations` to disable).
    pub decay_at: usize,
    /// Decay factor.
    pub decay_factor: f64,
    /// EPE search range.
    pub epe_search: f64,
    /// Use shorter segments near corners.
    pub corner_refine: bool,
    /// Smooth neighbouring segment moves.
    pub smooth: bool,
    /// Simulation pixel pitch, nm.
    pub pitch: f64,
    /// PVB dose corner.
    pub dose_delta: f64,
}

impl RectOpcConfig {
    /// Calibre-like preset for via layers (same budget the paper grants
    /// Calibre). Dissection stays at the published via parameters — the
    /// rectilinear representation does *not* benefit from the finer
    /// dissection CardOPC's metal preset was recalibrated to (jog
    /// artifacts), so the baseline keeps its own best settings.
    pub fn calibre_like_via() -> Self {
        let c = OpcConfig::via();
        RectOpcConfig {
            l_c: 20.0,
            l_u: 30.0,
            move_step: 2.0,
            iterations: c.iterations,
            decay_at: c.decay_at,
            decay_factor: c.decay_factor,
            epe_search: c.epe_search,
            corner_refine: true,
            // Like the CardOPC via preset, per-segment feedback without
            // neighbour smoothing converges best on via-scale features;
            // the baseline gets its strongest configuration.
            smooth: false,
            pitch: c.pitch,
            dose_delta: c.dose_delta,
        }
    }

    /// Calibre-like preset for metal layers (published `l_c = 30`,
    /// `l_u = 60`, 4 nm moves — its strongest dissection on this engine).
    pub fn calibre_like_metal() -> Self {
        RectOpcConfig {
            l_c: 30.0,
            l_u: 60.0,
            move_step: 4.0,
            ..Self::calibre_like_via()
        }
    }

    /// Calibre-like preset for large-scale tiles (20 iterations, per
    /// §IV-B).
    pub fn calibre_like_large() -> Self {
        let c = OpcConfig::large_scale();
        RectOpcConfig {
            l_c: 40.0,
            l_u: 40.0,
            move_step: 8.0,
            iterations: 20,
            decay_at: 10,
            pitch: c.pitch,
            ..Self::calibre_like_via()
        }
    }

    /// SimpleOPC preset \[45\]: uniform dissection, no smoothing, no decay.
    pub fn simple(base: &RectOpcConfig) -> Self {
        RectOpcConfig {
            corner_refine: false,
            smooth: false,
            decay_at: usize::MAX,
            ..base.clone()
        }
    }

    fn assert_valid(&self) {
        assert!(
            self.l_c > 0.0 && self.l_u > 0.0,
            "dissection lengths must be positive"
        );
        assert!(self.move_step > 0.0, "move step must be positive");
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(self.pitch > 0.0, "pitch must be positive");
    }
}

/// One rectilinear shape under optimisation: frozen dissection plus the
/// per-segment normal offsets.
#[derive(Clone, Debug)]
struct RectShape {
    segments: Vec<DissectedSegment>,
    offsets: Vec<f64>,
    anchors: Vec<MeasurePoint>,
}

/// Result of a rectilinear OPC run.
#[derive(Clone, Debug)]
pub struct RectOutcome {
    /// Final mask polygons (corrected mains plus the static SRAFs).
    pub mask: Vec<Polygon>,
    /// Sum of |EPE| per iteration.
    pub epe_history: Vec<f64>,
    /// Final scores.
    pub evaluation: Evaluation,
}

/// The rectilinear segment-based OPC baseline.
#[derive(Clone, Debug)]
pub struct RectOpc {
    config: RectOpcConfig,
}

impl RectOpc {
    /// Creates the baseline flow.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration values.
    pub fn new(config: RectOpcConfig) -> Self {
        config.assert_valid();
        RectOpc { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RectOpcConfig {
        &self.config
    }

    /// Runs the baseline on a clip with optional pre-inserted SRAF
    /// polygons (kept static, exactly as the paper's via flow inserts
    /// SRAFs before OPC launches).
    ///
    /// # Errors
    ///
    /// [`OpcError::EmptyClip`] or engine mismatch errors.
    pub fn run_with_engine(
        &self,
        clip: &Clip,
        engine: &LithoEngine,
        srafs: &[Polygon],
        convention: MeasureConvention,
    ) -> Result<RectOutcome, OpcError> {
        if clip.targets().is_empty() {
            return Err(OpcError::EmptyClip);
        }
        let mut shapes: Vec<RectShape> = clip
            .targets()
            .iter()
            .map(|t| {
                let l_c = if self.config.corner_refine {
                    self.config.l_c
                } else {
                    self.config.l_u
                };
                let segments = dissect_polygon(t, l_c, self.config.l_u);
                let anchors = segments
                    .iter()
                    .map(|s| MeasurePoint {
                        position: s.midpoint(),
                        normal: s.outward,
                    })
                    .collect();
                let offsets = vec![0.0; segments.len()];
                RectShape {
                    segments,
                    offsets,
                    anchors,
                }
            })
            .collect();

        let mut step = self.config.move_step;
        let mut epe_history = Vec::with_capacity(self.config.iterations);
        for iter in 0..self.config.iterations {
            if iter == self.config.decay_at {
                step *= self.config.decay_factor;
            }
            let mut polys: Vec<Polygon> = shapes.iter().map(rebuild_polygon).collect();
            polys.extend_from_slice(srafs);
            let raster = rasterize(&polys, engine.width(), engine.height(), engine.pitch());
            let aerial = engine.aerial_image(&raster)?;

            let mut total = 0.0;
            for shape in &mut shapes {
                let epes: Vec<f64> = shape
                    .anchors
                    .iter()
                    .map(|a| epe_at(&aerial, engine.threshold(), a, self.config.epe_search))
                    .collect();
                total += epes.iter().map(|e| e.abs()).sum::<f64>();
                let n = shape.offsets.len();
                let deltas: Vec<f64> = epes.iter().map(|e| (-e).clamp(-step, step)).collect();
                for i in 0..n {
                    let d = if self.config.smooth {
                        0.25 * deltas[(i + n - 1) % n]
                            + 0.5 * deltas[i]
                            + 0.25 * deltas[(i + 1) % n]
                    } else {
                        deltas[i]
                    };
                    shape.offsets[i] += d;
                }
            }
            epe_history.push(total);
        }

        let mut mask: Vec<Polygon> = shapes.iter().map(rebuild_polygon).collect();
        mask.extend_from_slice(srafs);
        let evaluation = evaluate_mask(
            engine,
            &mask,
            clip.targets(),
            convention,
            self.config.dose_delta,
            self.config.epe_search,
        )?;
        Ok(RectOutcome {
            mask,
            epe_history,
            evaluation,
        })
    }
}

/// Rebuilds a polygon from segments shifted along their outward normals:
/// perpendicular neighbours meet at the intersection of their support
/// lines, parallel neighbours are connected with a jog.
fn rebuild_polygon(shape: &RectShape) -> Polygon {
    let n = shape.segments.len();
    let mut verts: Vec<Point> = Vec::with_capacity(n * 2);
    for i in 0..n {
        let j = (i + 1) % n;
        let (ai, bi) = shifted(&shape.segments[i], shape.offsets[i]);
        let (aj, bj) = shifted(&shape.segments[j], shape.offsets[j]);
        let di = bi - ai;
        let dj = bj - aj;
        let denom = di.cross(dj);
        if denom.abs() > 1e-9 {
            let t = (aj - ai).cross(dj) / denom;
            verts.push(ai + di * t);
        } else {
            // Parallel (possibly collinear with different offsets): jog.
            verts.push(bi);
            verts.push(aj);
        }
    }
    Polygon::new(verts)
}

fn shifted(seg: &DissectedSegment, offset: f64) -> (Point, Point) {
    let d = seg.outward * offset;
    (seg.a + d, seg.b + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::engine_for_extent;

    fn small_clip() -> Clip {
        Clip::new(
            "unit",
            1000.0,
            1000.0,
            vec![Polygon::rect(
                Point::new(440.0, 440.0),
                Point::new(560.0, 560.0),
            )],
        )
    }

    fn fast_config() -> RectOpcConfig {
        RectOpcConfig {
            iterations: 6,
            decay_at: 4,
            pitch: 8.0,
            ..RectOpcConfig::calibre_like_via()
        }
    }

    #[test]
    fn rebuild_identity_with_zero_offsets() {
        let poly = Polygon::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let segments = dissect_polygon(&poly, 20.0, 30.0);
        let offsets = vec![0.0; segments.len()];
        let shape = RectShape {
            anchors: vec![],
            segments,
            offsets,
        };
        let rebuilt = rebuild_polygon(&shape);
        assert!((rebuilt.area() - poly.area()).abs() < 1e-6);
        assert!(rebuilt.is_rectilinear());
    }

    #[test]
    fn uniform_offsets_inflate_uniformly() {
        let poly = Polygon::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let segments = dissect_polygon(&poly, 20.0, 30.0);
        let offsets = vec![5.0; segments.len()];
        let shape = RectShape {
            anchors: vec![],
            segments,
            offsets,
        };
        let rebuilt = rebuild_polygon(&shape);
        // Uniform 5 nm outward: 110x110 square.
        assert!((rebuilt.area() - 110.0 * 110.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_offsets_create_jogs() {
        let poly = Polygon::rect(Point::new(0.0, 0.0), Point::new(200.0, 100.0));
        let segments = dissect_polygon(&poly, 20.0, 60.0);
        let mut offsets = vec![0.0; segments.len()];
        // Push one middle (non-corner) segment out.
        let idx = segments.iter().position(|s| !s.is_corner).unwrap();
        offsets[idx] = 8.0;
        let shape = RectShape {
            anchors: vec![],
            segments,
            offsets,
        };
        let rebuilt = rebuild_polygon(&shape);
        assert!(rebuilt.is_rectilinear());
        assert!(rebuilt.len() > 4, "jogs should add vertices");
        assert!(rebuilt.area() > poly.area());
    }

    #[test]
    fn baseline_reduces_epe() {
        let clip = small_clip();
        let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();
        let flow = RectOpc::new(fast_config());
        let out = flow
            .run_with_engine(&clip, &engine, &[], MeasureConvention::ViaEdgeCenters)
            .unwrap();
        assert_eq!(out.epe_history.len(), 6);
        let first = out.epe_history[0];
        let last = *out.epe_history.last().unwrap();
        assert!(last <= first, "EPE {first} -> {last}");
        // Mask stays rectilinear.
        for p in &out.mask {
            assert!(p.is_rectilinear());
        }
    }

    #[test]
    fn simple_preset_disables_refinements() {
        let base = fast_config();
        let simple = RectOpcConfig::simple(&base);
        assert!(!simple.corner_refine);
        assert!(!simple.smooth);
        assert_eq!(simple.decay_at, usize::MAX);
        let clip = small_clip();
        let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();
        let out = RectOpc::new(simple)
            .run_with_engine(&clip, &engine, &[], MeasureConvention::ViaEdgeCenters)
            .unwrap();
        assert!(out.evaluation.epe_sum_nm.is_finite());
    }

    #[test]
    fn empty_clip_rejected() {
        let clip = Clip::new("empty", 100.0, 100.0, vec![]);
        let engine = engine_for_extent(100.0, 100.0, 8.0).unwrap();
        let flow = RectOpc::new(fast_config());
        assert!(matches!(
            flow.run_with_engine(&clip, &engine, &[], MeasureConvention::ViaEdgeCenters),
            Err(OpcError::EmptyClip)
        ));
    }
}
