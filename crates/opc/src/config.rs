//! CardOPC flow configuration (the paper's §IV parameter sets).

use crate::eval::MeasureConvention;
use cardopc_litho::Precision;
use cardopc_mrc::MrcRules;

/// Rule-based SRAF insertion parameters (Fig. 3(a)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SrafConfig {
    /// Ratio `r` between SRAF length and the main pattern edge length.
    pub length_ratio: f64,
    /// SRAF width, nm.
    pub width: f64,
    /// Distance `d_ms` between the main pattern edge and the SRAF, nm.
    pub distance: f64,
    /// Minimum main-pattern edge length that receives an SRAF, nm.
    pub min_edge: f64,
}

impl Default for SrafConfig {
    fn default() -> Self {
        SrafConfig {
            length_ratio: 0.6,
            // Stadium-shaped spline assists: 40 nm drawn keeps the assist
            // sub-printing at the overdose corner while staying above the
            // width rule.
            width: 40.0,
            distance: 100.0,
            min_edge: 60.0,
        }
    }
}

/// Configuration of the CardOPC flow.
///
/// The presets [`OpcConfig::via`], [`OpcConfig::metal`] and
/// [`OpcConfig::large_scale`] mirror the parameters published in §IV:
/// dissection lengths `l_c`/`l_u`, the per-iteration moving distance, the
/// iteration budget with its halfway decay, and the cardinal tension
/// `s = 0.6`.
#[derive(Clone, Debug, PartialEq)]
pub struct OpcConfig {
    /// Corner dissection segment length `l_c`, nm.
    pub l_c: f64,
    /// Uniform dissection segment length `l_u`, nm.
    pub l_u: f64,
    /// Maximum control point move per iteration, nm.
    pub move_step: f64,
    /// Number of correction iterations.
    pub iterations: usize,
    /// Iteration at which the moving distance decays.
    pub decay_at: usize,
    /// Decay factor applied at [`OpcConfig::decay_at`].
    pub decay_factor: f64,
    /// Cardinal spline tension `s`.
    pub tension: f64,
    /// Corner control point interpolation strength (Fig. 3(c)): `1` =
    /// fully interpolated (pulled inside the corner), `0` = straight
    /// segment midpoints, negative = extrapolated outward (line-end
    /// extension bias).
    pub corner_pull: f64,
    /// Half-width `W` of the neighbour-averaging window (Eq. 7).
    pub smooth_window: usize,
    /// Move control points along current spline normals (Eq. 8) rather
    /// than frozen target-anchor normals; see
    /// [`crate::CorrectionStep`]'s field of the same name.
    pub spline_normals: bool,
    /// Every this many iterations the control polygon is relaxed toward
    /// its neighbour midpoints (spike suppression; 0 disables).
    pub relax_every: usize,
    /// Relaxation strength in `[0, 1]`.
    pub relax_strength: f64,
    /// Polyline samples per spline segment when rasterising.
    pub samples_per_segment: usize,
    /// EPE normal-search range, nm.
    pub epe_search: f64,
    /// Simulation pixel pitch, nm.
    pub pitch: f64,
    /// Dose variation (±) defining the PV-band corners.
    pub dose_delta: f64,
    /// Rule-based SRAF insertion; `None` disables it (e.g. when SRAFs come
    /// from an external tool or from ILT fitting).
    pub sraf: Option<SrafConfig>,
    /// Mask rules checked and resolved after optimisation; `None` skips
    /// the MRC stage.
    pub mrc: Option<MrcRules>,
    /// EPE measure point convention used for the final evaluation.
    pub convention: MeasureConvention,
    /// Interior arithmetic of the lithography simulation backend. Geometry,
    /// MRC and spline fitting always run in `f64`; `F32` downcasts only the
    /// SOCS convolution hot loop (see `DESIGN.md` §12 for the accuracy
    /// contract).
    pub precision: Precision,
}

impl OpcConfig {
    /// Via-layer preset (§IV-A): `l_c = 20`, `l_u = 30`, 2 nm moves,
    /// 32 iterations with ×0.5 decay at 16, `s = 0.6`.
    pub fn via() -> Self {
        OpcConfig {
            l_c: 20.0,
            l_u: 30.0,
            move_step: 2.0,
            iterations: 32,
            decay_at: 16,
            decay_factor: 0.5,
            tension: 0.6,
            corner_pull: 1.0,
            // Engine-recalibrated loop dynamics (see DESIGN.md §4 and the
            // field docs): per-point feedback without neighbour smoothing,
            // and moves along the frozen Manhattan anchor normals. On this
            // substrate's optics the spline's inter-point coupling turns
            // smoothed/tilted moves into persistent edge ripple.
            smooth_window: 0,
            spline_normals: false,
            relax_every: 2,
            relax_strength: 0.3,
            samples_per_segment: 8,
            epe_search: 40.0,
            pitch: 4.0,
            dose_delta: 0.02,
            sraf: Some(SrafConfig::default()),
            mrc: Some(MrcRules::opc_node()),
            convention: MeasureConvention::ViaEdgeCenters,
            precision: Precision::F64,
        }
    }

    /// Metal-layer preset (§IV-A): `l_c = 30` and 4 nm moves as published.
    ///
    /// The published `l_u = 60` nm uniform dissection is recalibrated to
    /// 30 nm for this repository's optics: denser control points halve
    /// CardOPC's metal EPE here while the same density *hurts* the
    /// rectilinear baseline (jog artifacts) — the granularity advantage of
    /// the control-point representation the paper argues for.
    pub fn metal() -> Self {
        OpcConfig {
            l_c: 30.0,
            l_u: 30.0,
            move_step: 4.0,
            corner_pull: -0.7,
            relax_every: 4,
            relax_strength: 0.15,
            convention: MeasureConvention::MetalSpacing(60.0),
            ..OpcConfig::via()
        }
    }

    /// Large-scale preset (§IV-B): `l_c = l_u = 40`, 8 nm moves,
    /// 10 iterations with decay at 8.
    pub fn large_scale() -> Self {
        OpcConfig {
            l_c: 40.0,
            l_u: 40.0,
            move_step: 8.0,
            iterations: 10,
            decay_at: 8,
            pitch: 8.0,
            sraf: None,
            // With only 10 iterations the feedback cannot compensate the
            // relaxation's contraction; the coarse 40 nm dissection keeps
            // boundaries smooth on its own.
            relax_every: 0,
            convention: MeasureConvention::MetalSpacing(60.0),
            ..OpcConfig::via()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on invalid values; configurations
    /// are build-time constants, not runtime data.
    pub fn assert_valid(&self) {
        assert!(
            self.l_c > 0.0 && self.l_u > 0.0,
            "dissection lengths must be positive"
        );
        assert!(self.move_step > 0.0, "move step must be positive");
        assert!(self.iterations > 0, "need at least one iteration");
        assert!(
            self.decay_factor > 0.0 && self.decay_factor <= 1.0,
            "decay factor must be in (0, 1]"
        );
        assert!(self.tension.is_finite(), "tension must be finite");
        assert!(self.samples_per_segment > 0, "need samples per segment");
        assert!(self.epe_search > 0.0, "EPE search range must be positive");
        assert!(self.pitch > 0.0, "pitch must be positive");
        assert!(self.dose_delta >= 0.0, "dose delta must be non-negative");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let via = OpcConfig::via();
        assert_eq!(via.l_c, 20.0);
        assert_eq!(via.l_u, 30.0);
        assert_eq!(via.move_step, 2.0);
        assert_eq!(via.iterations, 32);
        assert_eq!(via.decay_at, 16);
        assert_eq!(via.decay_factor, 0.5);
        assert_eq!(via.tension, 0.6);

        let metal = OpcConfig::metal();
        assert_eq!(metal.l_c, 30.0);
        // l_u recalibrated from the published 60 nm for this engine (see
        // the preset docs).
        assert_eq!(metal.l_u, 30.0);
        assert_eq!(metal.move_step, 4.0);

        let large = OpcConfig::large_scale();
        assert_eq!(large.l_c, 40.0);
        assert_eq!(large.l_u, 40.0);
        assert_eq!(large.move_step, 8.0);
        assert_eq!(large.iterations, 10);
        assert_eq!(large.decay_at, 8);
    }

    #[test]
    fn presets_are_valid() {
        OpcConfig::via().assert_valid();
        OpcConfig::metal().assert_valid();
        OpcConfig::large_scale().assert_valid();
    }

    #[test]
    #[should_panic(expected = "move step")]
    fn invalid_step_panics() {
        let mut c = OpcConfig::via();
        c.move_step = 0.0;
        c.assert_valid();
    }
}
