//! Control point generation (Fig. 3(c)).
//!
//! Most control points are the midpoints of the dissected segments. Around
//! corners the midpoints are *interpolated* through a cardinal spline over
//! the segment boundary points, pulling corner control points slightly
//! toward the rounded corner the spline representation will produce — this
//! keeps the initial spline mask close to the (rectilinear) target.

use crate::dissect::DissectedSegment;
use cardopc_litho::MeasurePoint;
use cardopc_spline::{CardinalSpline, SplineError};

/// An OPC shape: the evolving spline plus the frozen EPE anchors derived
/// from the target boundary.
#[derive(Clone, Debug)]
pub struct OpcShape {
    /// The mask boundary being optimised.
    pub spline: CardinalSpline,
    /// EPE checking sites on the *target* boundary, one per control point.
    /// Anchors never move during correction.
    pub anchors: Vec<MeasurePoint>,
    /// `true` for sub-resolution assist features (not EPE-corrected).
    pub is_sraf: bool,
}

impl OpcShape {
    /// Builds the initial OPC shape for a dissected target boundary, with
    /// the default corner interpolation strength of 1 (fully interpolated
    /// corner control points, Fig. 3(c)).
    ///
    /// # Errors
    ///
    /// Propagates [`SplineError`] when fewer than three segments exist.
    pub fn from_dissection(
        segments: &[DissectedSegment],
        tension: f64,
    ) -> Result<Self, SplineError> {
        Self::from_dissection_with_pull(segments, tension, 1.0)
    }

    /// Builds the initial OPC shape with an explicit corner-pull strength:
    ///
    /// * `1.0` — corner control points fully interpolated through the
    ///   boundary-point spline (pulled inside the corner, Fig. 3(c)),
    /// * `0.0` — plain segment midpoints,
    /// * negative — corner control points *extrapolated outward* (a
    ///   serif-like line-end extension bias).
    ///
    /// # Errors
    ///
    /// Propagates [`SplineError`] when fewer than three segments exist.
    pub fn from_dissection_with_pull(
        segments: &[DissectedSegment],
        tension: f64,
        corner_pull: f64,
    ) -> Result<Self, SplineError> {
        // Anchors: straight segment midpoints with target outward normals.
        let anchors: Vec<MeasurePoint> = segments
            .iter()
            .map(|s| MeasurePoint {
                position: s.midpoint(),
                normal: s.outward,
            })
            .collect();

        // Boundary-point spline used to interpolate corner control points.
        let boundary: Vec<_> = segments.iter().map(|s| s.a).collect();
        let boundary_spline = CardinalSpline::closed(boundary, tension)?;

        // Control points: straight midpoints on uniform segments,
        // spline-interpolated midpoints on corner segments.
        let control: Vec<_> = segments
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if s.is_corner {
                    s.midpoint()
                        .lerp(boundary_spline.point(i, 0.5), corner_pull)
                } else {
                    s.midpoint()
                }
            })
            .collect();

        Ok(OpcShape {
            spline: CardinalSpline::closed(control, tension)?,
            anchors,
            is_sraf: false,
        })
    }

    /// Builds an SRAF shape directly from a control point loop; SRAFs carry
    /// no anchors and are skipped by EPE correction.
    ///
    /// # Errors
    ///
    /// Propagates [`SplineError`] for degenerate loops.
    pub fn sraf(
        control_points: Vec<cardopc_geometry::Point>,
        tension: f64,
    ) -> Result<Self, SplineError> {
        Ok(OpcShape {
            spline: CardinalSpline::closed(control_points, tension)?,
            anchors: Vec::new(),
            is_sraf: true,
        })
    }

    /// Number of control points.
    pub fn control_count(&self) -> usize {
        self.spline.control_points().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissect_polygon;
    use cardopc_geometry::{Point, Polygon};

    fn square(w: f64) -> Polygon {
        Polygon::rect(Point::new(0.0, 0.0), Point::new(w, w))
    }

    #[test]
    fn one_control_point_per_segment() {
        let segs = dissect_polygon(&square(100.0), 20.0, 30.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        assert_eq!(shape.control_count(), segs.len());
        assert_eq!(shape.anchors.len(), segs.len());
        assert!(!shape.is_sraf);
    }

    #[test]
    fn anchors_sit_on_target_boundary() {
        let poly = square(100.0);
        let segs = dissect_polygon(&poly, 20.0, 30.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        for a in &shape.anchors {
            assert!(
                poly.boundary_distance(a.position) < 1e-9,
                "anchor {} off boundary",
                a.position
            );
            assert!((a.normal.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_control_points_are_midpoints() {
        let segs = dissect_polygon(&square(200.0), 20.0, 30.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        for (i, s) in segs.iter().enumerate() {
            if !s.is_corner {
                assert!(
                    shape.spline.control_points()[i].distance(s.midpoint()) < 1e-9,
                    "uniform control point {i} not at midpoint"
                );
            }
        }
    }

    #[test]
    fn corner_control_points_pull_inward() {
        // Corner control points should deviate from straight midpoints,
        // toward the inside of the corner.
        let poly = square(100.0);
        let segs = dissect_polygon(&poly, 20.0, 30.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        let mut moved = 0;
        for (i, s) in segs.iter().enumerate() {
            if s.is_corner {
                let d = shape.spline.control_points()[i].distance(s.midpoint());
                if d > 0.01 {
                    moved += 1;
                }
            }
        }
        assert!(moved > 0, "corner interpolation had no effect");
    }

    #[test]
    fn initial_spline_stays_near_target() {
        let poly = square(100.0);
        let segs = dissect_polygon(&poly, 20.0, 30.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        let sampled = shape.spline.to_polygon(8);
        // Initial mask area within 15% of the target.
        assert!(
            (sampled.area() - poly.area()).abs() < 0.15 * poly.area(),
            "initial area {} vs target {}",
            sampled.area(),
            poly.area()
        );
    }

    #[test]
    fn sraf_shape_has_no_anchors() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(40.0, 20.0),
            Point::new(0.0, 20.0),
        ];
        let s = OpcShape::sraf(pts, 0.6).unwrap();
        assert!(s.is_sraf);
        assert!(s.anchors.is_empty());
        assert_eq!(s.control_count(), 4);
    }
}
