//! The EPE-feedback correction step (§III-E).
//!
//! With the diagonal-Jacobian approximation of Eq. (5)–(6), each control
//! point moves against its own EPE: `Δd_i = −clamp(e_i, ±step)`. The move
//! *direction* is the outward spline normal at the control point (Eq. 8),
//! and the applied move vectors are blended over neighbouring control
//! points of the same shape with binomial weights (Eq. 7), which mimics a
//! multi-segment solver and keeps the boundary smooth.

use crate::control::OpcShape;
use cardopc_geometry::{Grid, Point};
use cardopc_litho::{epe_at, WorkerPool};

/// Parameters of one correction sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrectionStep {
    /// Maximum move distance this iteration, nm.
    pub step_limit: f64,
    /// Half-width `W` of the neighbour-averaging window.
    pub smooth_window: usize,
    /// EPE search range along the normal, nm.
    pub epe_search: f64,
    /// Move along the current spline normal (`true`, Eq. 8 — required for
    /// any-angle edges) or along the frozen target-anchor normal (`false`
    /// — keeps moves purely perpendicular on Manhattan targets, damping
    /// edge ripple).
    pub spline_normals: bool,
}

/// Reusable per-worker scratch for [`correct_shapes_with_pool`]: after the
/// first sweep the correction loop performs no per-shape allocations.
#[derive(Clone, Debug, Default)]
pub struct CorrectScratch {
    /// Holds the per-anchor EPEs, then (in place) the clamped raw moves.
    moves: Vec<f64>,
    /// Outward unit move directions.
    outward: Vec<Point>,
    /// Binomially blended move distances.
    blended: Vec<f64>,
}

/// Applies one correction sweep to every non-SRAF shape; returns the sum
/// of |EPE| over all anchors (the convergence signal).
///
/// Shapes are corrected in parallel on the shared global [`WorkerPool`];
/// see [`correct_shapes_with_pool`] for the determinism guarantee.
pub fn correct_shapes(
    shapes: &mut [OpcShape],
    aerial: &Grid,
    threshold: f64,
    step: &CorrectionStep,
) -> f64 {
    correct_shapes_with_pool(shapes, aerial, threshold, step, WorkerPool::global())
}

/// [`correct_shapes`], additionally recording each shape's |EPE| sum for
/// this sweep into `per_shape` (resized to `shapes.len()`; SRAF entries
/// stay `0.0`). The returned total is the sum of `per_shape` in shape
/// order, so it is bit-identical to [`correct_shapes`] for the same
/// inputs. Tiled runtimes use the per-shape totals to aggregate
/// convergence signals over owner-tile shapes only.
pub fn correct_shapes_recording(
    shapes: &mut [OpcShape],
    aerial: &Grid,
    threshold: f64,
    step: &CorrectionStep,
    per_shape: &mut Vec<f64>,
) -> f64 {
    per_shape.clear();
    per_shape.resize(shapes.len(), 0.0);
    correct_into(
        shapes,
        aerial,
        threshold,
        step,
        WorkerPool::global(),
        per_shape,
    )
}

/// One correction sweep with an explicit worker pool.
///
/// Each shape's correction only reads the (shared) aerial image and writes
/// its own control points, so shapes are statically chunked across the
/// pool's task slots, each slot reusing one [`CorrectScratch`]. Per-shape
/// |EPE| totals are written into a slot-independent, shape-indexed buffer
/// and reduced in shape order afterwards, so the returned total and every
/// control point are **bit-identical for any worker count** (the same
/// guarantee the litho engine gives for `aerial_image`).
pub fn correct_shapes_with_pool(
    shapes: &mut [OpcShape],
    aerial: &Grid,
    threshold: f64,
    step: &CorrectionStep,
    pool: &WorkerPool,
) -> f64 {
    let mut totals = vec![0.0f64; shapes.len()];
    correct_into(shapes, aerial, threshold, step, pool, &mut totals)
}

/// The shared sweep body: writes per-shape |EPE| totals into the
/// caller-provided shape-indexed buffer (`totals.len() == shapes.len()`)
/// and returns their sum in shape order.
fn correct_into(
    shapes: &mut [OpcShape],
    aerial: &Grid,
    threshold: f64,
    step: &CorrectionStep,
    pool: &WorkerPool,
    totals: &mut [f64],
) -> f64 {
    let n = shapes.len();
    debug_assert_eq!(totals.len(), n);
    if n == 0 {
        return 0.0;
    }
    let weights = binomial_weights(step.smooth_window);
    let tasks = pool.parallelism().clamp(1, n);
    let chunk = n.div_ceil(tasks);

    struct Slot<'a> {
        work: Vec<(&'a mut OpcShape, &'a mut f64)>,
        scratch: CorrectScratch,
    }
    let mut slots: Vec<Slot> = (0..tasks)
        .map(|_| Slot {
            work: Vec::new(),
            scratch: CorrectScratch::default(),
        })
        .collect();
    for t in totals.iter_mut() {
        *t = 0.0;
    }
    for (i, pair) in shapes.iter_mut().zip(totals.iter_mut()).enumerate() {
        slots[i / chunk].work.push(pair);
    }

    pool.run_with_slots(&mut slots, |_t, slot| {
        for (shape, total) in slot.work.iter_mut() {
            if shape.is_sraf {
                continue;
            }
            **total = correct_one(shape, aerial, threshold, step, &weights, &mut slot.scratch);
        }
    });

    totals.iter().sum()
}

fn correct_one(
    shape: &mut OpcShape,
    aerial: &Grid,
    threshold: f64,
    step: &CorrectionStep,
    weights: &[f64],
    scratch: &mut CorrectScratch,
) -> f64 {
    let n = shape.spline.control_points().len();
    debug_assert_eq!(shape.anchors.len(), n, "anchor/control point mismatch");

    // 1. EPE at each (frozen) anchor.
    scratch.moves.clear();
    scratch.moves.extend(
        shape
            .anchors
            .iter()
            .map(|a| epe_at(aerial, threshold, a, step.epe_search)),
    );
    let total: f64 = scratch.moves.iter().map(|e| e.abs()).sum();

    // 2. Outward move directions: the current spline normals (Eq. 8) or
    //    the frozen anchor normals.
    if step.spline_normals {
        outward_normals_into(shape, &mut scratch.outward);
    } else {
        scratch.outward.clear();
        scratch
            .outward
            .extend(shape.anchors.iter().map(|a| a.normal));
    }

    // 3. Raw signed move distances (in place over the EPEs): positive EPE
    //    (over-print) pulls inward (negative distance along the outward
    //    direction).
    for e in &mut scratch.moves {
        *e = (-*e).clamp(-step.step_limit, step.step_limit);
    }

    // 4. Binomial neighbour blending of the move *distances* (Eq. 7).
    //    Each point then moves along its own normal — blending the full
    //    vectors instead would leak tangential components at corners,
    //    letting control points drift along the boundary unchecked (the
    //    anchors are frozen, so tangential drift is never corrected).
    let w = step.smooth_window as isize;
    scratch.blended.clear();
    scratch.blended.extend((0..n as isize).map(|i| {
        let mut acc = 0.0;
        for (j, &wk) in weights.iter().enumerate() {
            let k = i + (j as isize - w);
            acc += scratch.moves[k.rem_euclid(n as isize) as usize] * wk;
        }
        acc
    }));

    // 5. Apply along the move directions.
    for (i, cp) in shape.spline.control_points_mut().iter_mut().enumerate() {
        *cp += scratch.outward[i] * scratch.blended[i];
    }

    total
}

/// Applies one pass of position-space Laplacian relaxation to a shape's
/// control points: each point moves `strength` of the way toward its
/// neighbours' midpoint. Interleaved with correction sweeps this keeps the
/// boundary smooth (no spikes/necks for MRC to flag) while the EPE
/// feedback re-corrects any fidelity the relaxation costs.
pub fn relax_shape(shape: &mut OpcShape, strength: f64) {
    let cps = shape.spline.control_points_mut();
    let n = cps.len();
    if n < 3 {
        return;
    }
    // Rolling neighbours instead of snapshotting the whole loop: `prev`
    // carries the pre-relaxation value of cps[i-1] and `first` the original
    // cps[0] for the final wrap-around.
    let first = cps[0];
    let mut prev = cps[n - 1];
    for i in 0..n {
        let next = if i + 1 == n { first } else { cps[i + 1] };
        let cur = cps[i];
        let mid = (next + prev) * 0.5;
        cps[i] += (mid - cur) * strength;
        prev = cur;
    }
}

/// Unit outward normals at every control point of a shape, robust at
/// degenerate spline tangents (falls back to control polygon chords).
pub fn outward_normals(shape: &OpcShape) -> Vec<Point> {
    let mut out = Vec::new();
    outward_normals_into(shape, &mut out);
    out
}

/// [`outward_normals`] into a reused buffer (cleared first).
fn outward_normals_into(shape: &OpcShape, out: &mut Vec<Point>) {
    let cps = shape.spline.control_points();
    let n = cps.len();
    // Shoelace orientation directly on the control points (no polygon
    // clone): twice the signed area.
    let mut twice = 0.0;
    for i in 0..n {
        twice += cps[i].cross(cps[(i + 1) % n]);
    }
    let flip = if twice > 0.0 { -1.0 } else { 1.0 };
    out.clear();
    out.extend((0..n).map(|i| {
        let normal = shape
            .spline
            .normal(i, 0.0)
            .or_else(|| {
                let chord = cps[(i + 1) % n] - cps[(i + n - 1) % n];
                chord.normalized().map(Point::perp)
            })
            .unwrap_or(Point::new(1.0, 0.0));
        normal * flip
    }));
}

/// Normalised binomial weights `C(2W, W+k) / 4^W` for `k ∈ [−W, W]`.
fn binomial_weights(w: usize) -> Vec<f64> {
    let m = 2 * w;
    let mut row = vec![1.0f64];
    for _ in 0..m {
        let mut next = vec![1.0];
        for k in 1..row.len() {
            next.push(row[k - 1] + row[k]);
        }
        next.push(1.0);
        row = next;
    }
    let total: f64 = row.iter().sum();
    row.into_iter().map(|v| v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dissect_polygon, OpcShape as Shape};
    use cardopc_geometry::Polygon as Poly;

    /// A synthetic aerial image printing a disc of radius `r`: level-0.3
    /// contour at the circle.
    fn disc_field(w: usize, h: usize, pitch: f64, c: Point, r: f64) -> Grid {
        let mut g = Grid::zeros(w, h, pitch);
        for iy in 0..h {
            for ix in 0..w {
                let p = Point::new((ix as f64 + 0.5) * pitch, (iy as f64 + 0.5) * pitch);
                g[(ix, iy)] = 0.3 - (p.distance(c) - r) * 0.01;
            }
        }
        g
    }

    fn square_shape(x0: f64, w: f64) -> Shape {
        let poly = Poly::rect(Point::new(x0, x0), Point::new(x0 + w, x0 + w));
        let segs = dissect_polygon(&poly, 20.0, 30.0);
        Shape::from_dissection(&segs, 0.6).unwrap()
    }

    #[test]
    fn binomial_weights_normalised_and_symmetric() {
        for w in 0..4 {
            let ws = binomial_weights(w);
            assert_eq!(ws.len(), 2 * w + 1);
            let sum: f64 = ws.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for k in 0..ws.len() {
                assert_eq!(ws[k], ws[ws.len() - 1 - k]);
            }
        }
        assert_eq!(binomial_weights(1), vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn outward_normals_point_outward() {
        let shape = square_shape(100.0, 100.0);
        let c = Point::new(150.0, 150.0);
        for (i, n) in outward_normals(&shape).iter().enumerate() {
            let p = shape.spline.control_points()[i];
            assert!(
                (p + *n * 1.0).distance(c) > p.distance(c),
                "normal {i} not outward"
            );
        }
    }

    #[test]
    fn overprint_pulls_boundary_inward() {
        // Printed disc much larger than the 100 nm target square: every
        // anchor sees positive EPE, so the correction shrinks the shape.
        let mut shape = square_shape(100.0, 100.0);
        let before = shape.spline.to_polygon(8).area();
        let aerial = disc_field(128, 128, 2.0, Point::new(150.0, 150.0), 90.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        let total = correct_shapes(std::slice::from_mut(&mut shape), &aerial, 0.3, &step);
        assert!(total > 0.0);
        let after = shape.spline.to_polygon(8).area();
        assert!(after < before, "area {before} -> {after} should shrink");
    }

    #[test]
    fn underprint_pushes_boundary_outward() {
        let mut shape = square_shape(100.0, 100.0);
        let before = shape.spline.to_polygon(8).area();
        // Printed disc smaller than the target.
        let aerial = disc_field(128, 128, 2.0, Point::new(150.0, 150.0), 30.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        correct_shapes(std::slice::from_mut(&mut shape), &aerial, 0.3, &step);
        let after = shape.spline.to_polygon(8).area();
        assert!(after > before, "area {before} -> {after} should grow");
    }

    #[test]
    fn moves_bounded_by_step_limit() {
        let mut shape = square_shape(100.0, 100.0);
        let before: Vec<Point> = shape.spline.control_points().to_vec();
        let aerial = disc_field(128, 128, 2.0, Point::new(150.0, 150.0), 90.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        correct_shapes(std::slice::from_mut(&mut shape), &aerial, 0.3, &step);
        for (b, a) in before.iter().zip(shape.spline.control_points()) {
            assert!(b.distance(*a) <= 2.0 + 1e-9, "move exceeded step limit");
        }
    }

    #[test]
    fn relax_pulls_spike_toward_neighbors() {
        let mut shape = square_shape(100.0, 100.0);
        // Inject a spike.
        let spike_idx = 0;
        let orig = shape.spline.control_points()[spike_idx];
        shape.spline.control_points_mut()[spike_idx] = orig + Point::new(-30.0, -30.0);
        let spiked = shape.spline.control_points()[spike_idx];
        relax_shape(&mut shape, 0.5);
        let relaxed = shape.spline.control_points()[spike_idx];
        // The spike moved back toward the loop.
        assert!(relaxed.distance(orig) < spiked.distance(orig));
    }

    #[test]
    fn relax_strength_zero_is_identity() {
        let mut shape = square_shape(100.0, 100.0);
        let before = shape.spline.control_points().to_vec();
        relax_shape(&mut shape, 0.0);
        assert_eq!(shape.spline.control_points(), &before[..]);
    }

    #[test]
    fn relax_shrinks_convex_loops_slightly() {
        // Laplacian relaxation contracts convex loops; the correction
        // feedback is what balances it in the full flow.
        let mut shape = square_shape(100.0, 100.0);
        let before = shape.spline.to_polygon(8).area();
        relax_shape(&mut shape, 0.3);
        let after = shape.spline.to_polygon(8).area();
        assert!(after < before);
        assert!(after > 0.7 * before, "one pass should shrink gently");
    }

    #[test]
    fn anchor_normal_mode_moves_along_anchor_directions() {
        let mut shape = square_shape(100.0, 100.0);
        let anchors = shape.anchors.clone();
        let before = shape.spline.control_points().to_vec();
        let aerial = disc_field(128, 128, 2.0, Point::new(150.0, 150.0), 30.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 0,
            epe_search: 40.0,
            spline_normals: false,
        };
        correct_shapes(std::slice::from_mut(&mut shape), &aerial, 0.3, &step);
        for ((b, a), anchor) in before
            .iter()
            .zip(shape.spline.control_points())
            .zip(&anchors)
        {
            let delta = *a - *b;
            if delta.norm() > 1e-9 {
                // Movement is collinear with the anchor normal.
                assert!(
                    delta.normalized().unwrap().cross(anchor.normal).abs() < 1e-9,
                    "move {delta} not along anchor normal {}",
                    anchor.normal
                );
            }
        }
    }

    #[test]
    fn correct_shapes_bit_identical_across_worker_counts() {
        // The same guarantee PR 1 established for aerial_image: any worker
        // count yields bit-identical control points and |EPE| total.
        let aerial = disc_field(128, 128, 2.0, Point::new(130.0, 130.0), 70.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        let make_shapes = || -> Vec<Shape> {
            let mut v = vec![
                square_shape(60.0, 80.0),
                square_shape(150.0, 60.0),
                square_shape(40.0, 140.0),
            ];
            v.push(
                Shape::sraf(
                    vec![
                        Point::new(10.0, 10.0),
                        Point::new(50.0, 10.0),
                        Point::new(50.0, 30.0),
                        Point::new(10.0, 30.0),
                    ],
                    0.6,
                )
                .unwrap(),
            );
            v
        };
        let mut reference = make_shapes();
        let serial_pool = WorkerPool::new(1);
        let ref_total = correct_shapes_with_pool(&mut reference, &aerial, 0.3, &step, &serial_pool);
        for workers in [2usize, 3, 8] {
            let pool = WorkerPool::new(workers);
            let mut shapes = make_shapes();
            let total = correct_shapes_with_pool(&mut shapes, &aerial, 0.3, &step, &pool);
            assert_eq!(total, ref_total, "total differs at {workers} workers");
            for (s, r) in shapes.iter().zip(&reference) {
                assert_eq!(
                    s.spline.control_points(),
                    r.spline.control_points(),
                    "control points differ at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn srafs_are_not_moved() {
        let mut sraf = Shape::sraf(
            vec![
                Point::new(0.0, 0.0),
                Point::new(40.0, 0.0),
                Point::new(40.0, 20.0),
                Point::new(0.0, 20.0),
            ],
            0.6,
        )
        .unwrap();
        let before = sraf.spline.control_points().to_vec();
        let aerial = disc_field(64, 64, 2.0, Point::new(20.0, 10.0), 50.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        let total = correct_shapes(std::slice::from_mut(&mut sraf), &aerial, 0.3, &step);
        assert_eq!(total, 0.0);
        assert_eq!(sraf.spline.control_points(), &before[..]);
    }

    #[test]
    fn converges_on_synthetic_field() {
        // Repeated correction against a fixed-contour field drives the
        // boundary to the contour (the EPE at anchors is field-determined,
        // but the *mask* matches when the mask boundary reaches where the
        // anchors' EPE reports zero; here the field contour is a disc of
        // the target's inscribed size, so EPE is constant and moves stop
        // once clamped steps shrink).
        let mut shape = square_shape(100.0, 100.0);
        let aerial = disc_field(128, 128, 2.0, Point::new(150.0, 150.0), 50.0);
        let step = CorrectionStep {
            step_limit: 2.0,
            smooth_window: 1,
            epe_search: 40.0,
            spline_normals: true,
        };
        let e0 = correct_shapes(std::slice::from_mut(&mut shape), &aerial, 0.3, &step);
        // EPE at frozen anchors doesn't change (field is fixed), but the
        // mask keeps moving; just verify the sweep is deterministic and
        // finite.
        assert!(e0.is_finite());
        for p in shape.spline.control_points() {
            assert!(p.is_finite());
        }
    }
}
