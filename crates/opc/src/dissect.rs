//! Edge dissection (Fig. 3(b)): short segments around corners, longer
//! segments elsewhere.

use cardopc_geometry::{Point, Polygon};

/// One dissected sub-edge of a target polygon.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DissectedSegment {
    /// Segment start (walk order along the boundary).
    pub a: Point,
    /// Segment end.
    pub b: Point,
    /// `true` when this is one of the shorter corner segments.
    pub is_corner: bool,
    /// Unit outward normal of the original edge.
    pub outward: Point,
}

impl DissectedSegment {
    /// Segment midpoint — the canonical control point / EPE anchor site.
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }
}

/// Dissects every edge of `poly` into corner segments of length `l_c` and
/// uniform segments of roughly `l_u` (Fig. 3(b)). Segments are returned in
/// boundary walk order; the polygon is normalised to counter-clockwise
/// first so outward normals are consistent.
///
/// Short edges (length ≤ 2·l_c) become a single corner segment.
///
/// # Panics
///
/// Panics when `l_c` or `l_u` is not strictly positive.
///
/// ```
/// use cardopc_geometry::{Point, Polygon};
/// use cardopc_opc::dissect_polygon;
///
/// let square = Polygon::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
/// let segs = dissect_polygon(&square, 20.0, 30.0);
/// // Each 100 nm edge: corner(20) + 2x30 + corner(20) = 4 segments.
/// assert_eq!(segs.len(), 16);
/// assert!(segs.iter().filter(|s| s.is_corner).count() == 8);
/// ```
pub fn dissect_polygon(poly: &Polygon, l_c: f64, l_u: f64) -> Vec<DissectedSegment> {
    assert!(
        l_c > 0.0 && l_u > 0.0,
        "dissection lengths must be positive"
    );
    let ccw = poly.clone().into_ccw();
    let mut out = Vec::new();
    for edge in ccw.edges() {
        let len = edge.length();
        let Some(dir) = edge.delta().normalized() else {
            continue;
        };
        // CCW ring: interior on the left, outward on the right.
        let outward = -dir.perp();
        let mut push = |t0: f64, t1: f64, is_corner: bool| {
            out.push(DissectedSegment {
                a: edge.at(t0 / len),
                b: edge.at(t1 / len),
                is_corner,
                outward,
            });
        };
        if len <= 2.0 * l_c {
            push(0.0, len, true);
            continue;
        }
        push(0.0, l_c, true);
        let middle = len - 2.0 * l_c;
        let count = (middle / l_u).ceil().max(1.0) as usize;
        let step = middle / count as f64;
        for k in 0..count {
            push(l_c + k as f64 * step, l_c + (k + 1) as f64 * step, false);
        }
        push(len - l_c, len, true);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(w: f64) -> Polygon {
        Polygon::rect(Point::new(0.0, 0.0), Point::new(w, w))
    }

    #[test]
    fn segments_cover_boundary_exactly() {
        let poly = square(100.0);
        let segs = dissect_polygon(&poly, 20.0, 30.0);
        let total: f64 = segs.iter().map(|s| s.length()).sum();
        assert!((total - poly.perimeter()).abs() < 1e-9);
        // Walk order is continuous.
        for w in segs.windows(2) {
            assert!(w[0].b.distance(w[1].a) < 1e-9, "gap in dissection walk");
        }
    }

    #[test]
    fn corner_segments_have_length_lc() {
        let segs = dissect_polygon(&square(100.0), 20.0, 30.0);
        for s in segs.iter().filter(|s| s.is_corner) {
            assert!((s.length() - 20.0).abs() < 1e-9);
        }
        for s in segs.iter().filter(|s| !s.is_corner) {
            assert!(s.length() <= 30.0 + 1e-9);
            assert!(s.length() >= 15.0);
        }
    }

    #[test]
    fn short_edges_single_corner_segment() {
        // 70 nm via with l_c = 20, l_u = 30: middle = 30 -> 1 uniform
        // segment; but a 35 nm edge (< 2*20) is one corner segment.
        let tiny = square(35.0);
        let segs = dissect_polygon(&tiny, 20.0, 30.0);
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| s.is_corner));
    }

    #[test]
    fn via_sized_square_dissection() {
        // 70 nm square, via preset: per edge corner(20) + 30 + corner(20).
        let segs = dissect_polygon(&square(70.0), 20.0, 30.0);
        assert_eq!(segs.len(), 12);
        assert_eq!(segs.iter().filter(|s| s.is_corner).count(), 8);
    }

    #[test]
    fn outward_normals_point_away_from_centroid() {
        let poly = square(100.0);
        let c = poly.centroid();
        for s in dissect_polygon(&poly, 20.0, 30.0) {
            let m = s.midpoint();
            assert!(
                (m + s.outward * 1.0).distance(c) > m.distance(c),
                "normal not outward at {m}"
            );
        }
    }

    #[test]
    fn cw_input_same_normals_as_ccw() {
        let mut cw = square(100.0);
        cw.reverse();
        let a = dissect_polygon(&square(100.0), 20.0, 30.0);
        let b = dissect_polygon(&cw, 20.0, 30.0);
        assert_eq!(a.len(), b.len());
        // Both normalised to CCW: outward normal sets must match.
        let mut na: Vec<(i64, i64)> = a
            .iter()
            .map(|s| ((s.outward.x * 10.0) as i64, (s.outward.y * 10.0) as i64))
            .collect();
        let mut nb: Vec<(i64, i64)> = b
            .iter()
            .map(|s| ((s.outward.x * 10.0) as i64, (s.outward.y * 10.0) as i64))
            .collect();
        na.sort_unstable();
        nb.sort_unstable();
        assert_eq!(na, nb);
    }

    #[test]
    fn uniform_segments_evenly_sized() {
        // 200 nm edge, l_c = 20, l_u = 30 -> middle 160 -> 6 segments of
        // 26.67 nm.
        let segs = dissect_polygon(&square(200.0), 20.0, 30.0);
        let uniform: Vec<_> = segs.iter().filter(|s| !s.is_corner).collect();
        assert_eq!(uniform.len(), 24);
        for s in &uniform {
            assert!((s.length() - 160.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_lengths_panic() {
        let _ = dissect_polygon(&square(10.0), 0.0, 30.0);
    }
}
