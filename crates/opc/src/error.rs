//! Error type for the OPC flows.

use cardopc_litho::LithoError;
use cardopc_spline::SplineError;
use std::error::Error;
use std::fmt;

/// Errors returned by the OPC pipelines.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum OpcError {
    /// The lithography engine rejected a configuration or mask.
    Litho(LithoError),
    /// Spline construction failed (degenerate shape).
    Spline(SplineError),
    /// The clip contains no target shapes.
    EmptyClip,
    /// The clip does not fit the simulation grid.
    ClipTooLarge {
        /// Requested clip extent in pixels.
        needed: usize,
        /// Maximum supported grid edge.
        max: usize,
    },
}

impl fmt::Display for OpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpcError::Litho(e) => write!(f, "lithography error: {e}"),
            OpcError::Spline(e) => write!(f, "spline error: {e}"),
            OpcError::EmptyClip => write!(f, "clip contains no target shapes"),
            OpcError::ClipTooLarge { needed, max } => {
                write!(f, "clip needs a {needed}-pixel grid, maximum is {max}")
            }
        }
    }
}

impl Error for OpcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OpcError::Litho(e) => Some(e),
            OpcError::Spline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LithoError> for OpcError {
    fn from(e: LithoError) -> Self {
        OpcError::Litho(e)
    }
}

impl From<SplineError> for OpcError {
    fn from(e: SplineError) -> Self {
        OpcError::Spline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OpcError::from(LithoError::InvalidOptics("na"));
        assert!(e.to_string().contains("lithography"));
        assert!(e.source().is_some());
        assert!(OpcError::EmptyClip.source().is_none());
        let big = OpcError::ClipTooLarge {
            needed: 9000,
            max: 4096,
        };
        assert!(big.to_string().contains("9000"));
        let s = OpcError::from(SplineError::InvalidTension);
        assert!(s.to_string().contains("spline"));
    }
}
