//! Shared mask evaluation: EPE / PVB / L2 under the paper's conventions.
//!
//! Every method in the benchmark tables — CardOPC, the rectilinear
//! baselines, raw ILT and the hybrid — is scored by this one function, so
//! comparisons are apples-to-apples (the paper does the same by scoring
//! everything with the contest engine or Calibre).

use crate::OpcError;
use cardopc_geometry::{Grid, Polygon};
use cardopc_litho::{
    measure_epe, metal_measure_points_into, rasterize, thresholded_xor_area,
    via_measure_points_into, EpeReport, LithoEngine, MeasurePoint, ProcessCondition,
};

/// Which measure point convention to evaluate EPE with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeasureConvention {
    /// One point per target edge centre (via layers).
    ViaEdgeCenters,
    /// Points along edges with the given spacing in nm (metal layers; the
    /// paper uses 60 nm).
    MetalSpacing(f64),
}

/// The scores of one optimised mask.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Per-site EPE details at nominal conditions.
    pub epe: EpeReport,
    /// Sum of |EPE| in nm (Tables I/II metric).
    pub epe_sum_nm: f64,
    /// EPE violation count at the given tolerance (Table III metric).
    pub epe_violations: usize,
    /// Tolerance used for the violation count, nm.
    pub epe_tolerance: f64,
    /// Process variation band area, nm².
    pub pvb_nm2: f64,
    /// Squared L2 error vs the target, nm².
    pub l2_nm2: f64,
}

/// EPE violation tolerance used throughout the experiments, nm.
pub const EPE_TOLERANCE: f64 = 2.0;

/// Scores a mask (any method's output polygons) against target patterns.
///
/// * EPE at the convention's measure points on the **targets**, using the
///   nominal aerial image,
/// * PVB between the outer (overdose, focus) and inner (underdose,
///   defocus) corner prints,
/// * L2 between the nominal print and the rasterised target.
///
/// # Errors
///
/// Propagates [`OpcError::Litho`] on engine/grid mismatches.
pub fn evaluate_mask(
    engine: &LithoEngine,
    mask: &[Polygon],
    targets: &[Polygon],
    convention: MeasureConvention,
    dose_delta: f64,
    epe_search: f64,
) -> Result<Evaluation, OpcError> {
    let (w, h, pitch) = (engine.width(), engine.height(), engine.pitch());
    let mask_raster = rasterize(mask, w, h, pitch);
    evaluate_mask_grid(
        engine,
        &mask_raster,
        targets,
        convention,
        dose_delta,
        epe_search,
    )
}

/// Reusable buffers for repeated mask scoring (the ILT/hybrid inner loops
/// and the runtime's per-tile scoring evaluate thousands of masks against
/// the same handful of targets).
#[derive(Clone, Debug, Default)]
pub struct EvalScratch {
    sites: Vec<MeasurePoint>,
}

impl EvalScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// Scores a rasterised mask (e.g. a pixel ILT output) against target
/// patterns; same metrics as [`evaluate_mask`].
///
/// Both aerial images (nominal + defocused) come from a single forward
/// mask FFT ([`LithoEngine::aerial_images_multi`]), and the L2/PVB terms
/// fuse thresholding with the XOR count instead of materialising binarized
/// grids — the scores are identical to the serial
/// `aerial_image`/`aerial_image_defocused` + `binarize` formulation.
///
/// # Errors
///
/// Propagates [`OpcError::Litho`] on engine/grid mismatches.
pub fn evaluate_mask_grid(
    engine: &LithoEngine,
    mask_raster: &Grid,
    targets: &[Polygon],
    convention: MeasureConvention,
    dose_delta: f64,
    epe_search: f64,
) -> Result<Evaluation, OpcError> {
    let mut scratch = EvalScratch::new();
    evaluate_mask_grid_with(
        engine,
        mask_raster,
        targets,
        convention,
        dose_delta,
        epe_search,
        &mut scratch,
    )
}

/// [`evaluate_mask_grid`] with caller-owned scratch buffers — the form the
/// scoring loops use to avoid re-allocating measure sites per candidate.
///
/// # Errors
///
/// Propagates [`OpcError::Litho`] on engine/grid mismatches.
pub fn evaluate_mask_grid_with(
    engine: &LithoEngine,
    mask_raster: &Grid,
    targets: &[Polygon],
    convention: MeasureConvention,
    dose_delta: f64,
    epe_search: f64,
    scratch: &mut EvalScratch,
) -> Result<Evaluation, OpcError> {
    let (w, h, pitch) = (engine.width(), engine.height(), engine.pitch());

    // One shared-spectrum litho pass for both focus states.
    let images = engine.aerial_images_multi(
        mask_raster,
        &[
            ProcessCondition::NOMINAL,
            ProcessCondition::inner(dose_delta),
        ],
    )?;
    let (aerial, inner_aerial) = (&images[0], &images[1]);

    match convention {
        MeasureConvention::ViaEdgeCenters => via_measure_points_into(targets, &mut scratch.sites),
        MeasureConvention::MetalSpacing(s) => {
            metal_measure_points_into(targets, s, &mut scratch.sites)
        }
    }
    let epe = measure_epe(aerial, engine.threshold(), &scratch.sites, epe_search);

    // Fused threshold + XOR counts on the raw aerials: `binarize` maps
    // `v >= t` to 1.0, so comparing `v >= t` directly is exact.
    let target_raster = rasterize(targets, w, h, pitch);
    let l2 = thresholded_xor_area(
        aerial,
        engine.effective_threshold(ProcessCondition::NOMINAL),
        &target_raster,
        0.5,
    );
    let pvb = thresholded_xor_area(
        aerial,
        engine.effective_threshold(ProcessCondition::outer(dose_delta)),
        inner_aerial,
        engine.effective_threshold(ProcessCondition::inner(dose_delta)),
    );

    Ok(Evaluation {
        epe_sum_nm: epe.sum_abs(),
        epe_violations: epe.violations(EPE_TOLERANCE),
        epe_tolerance: EPE_TOLERANCE,
        pvb_nm2: pvb,
        l2_nm2: l2,
        epe,
    })
}

/// Builds a lithography engine sized for a clip, with calibrated resist
/// threshold.
///
/// The grid edge is the next 5-smooth integer (the FFT core's direct
/// mixed-radix sizes) covering `max(width, height)` at `pitch` nm per
/// pixel — no more rounding all the way up to a power of two.
///
/// # Errors
///
/// [`OpcError::ClipTooLarge`] beyond a 4096² grid;
/// [`OpcError::Litho`] for invalid optics.
pub fn engine_for_extent(
    width_nm: f64,
    height_nm: f64,
    pitch: f64,
) -> Result<LithoEngine, OpcError> {
    engine_for_extent_at(width_nm, height_nm, pitch, cardopc_litho::Precision::F64)
}

/// [`engine_for_extent`] with an explicit simulation precision: the
/// threshold is calibrated by the selected backend, so an `F32` engine's
/// resist model is self-consistent with its own arithmetic.
///
/// # Errors
///
/// Same as [`engine_for_extent`].
pub fn engine_for_extent_at(
    width_nm: f64,
    height_nm: f64,
    pitch: f64,
    precision: cardopc_litho::Precision,
) -> Result<LithoEngine, OpcError> {
    const MAX_EDGE: usize = 4096;
    let needed = (width_nm.max(height_nm) / pitch).ceil() as usize;
    let edge = cardopc_litho::next_five_smooth(needed);
    if edge > MAX_EDGE {
        return Err(OpcError::ClipTooLarge {
            needed: edge,
            max: MAX_EDGE,
        });
    }
    let mut engine = LithoEngine::with_precision(Default::default(), edge, edge, pitch, precision)?;
    engine.calibrate_threshold();
    Ok(engine)
}

/// Rasterises a target set onto an engine's grid (helper shared by flows).
pub fn raster_for_engine(engine: &LithoEngine, polys: &[Polygon]) -> Grid {
    rasterize(polys, engine.width(), engine.height(), engine.pitch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Point;

    fn engine() -> LithoEngine {
        engine_for_extent(1000.0, 1000.0, 8.0).unwrap()
    }

    #[test]
    fn engine_sizing() {
        // 1000 nm / 8 nm = 125 px = 5³, already 5-smooth: no padding at
        // all (the pow2 sizing rule used to round this up to 128).
        let e = engine();
        assert_eq!(e.width(), 125);
        assert_eq!(e.pitch(), 8.0);
        // Non-smooth requirements round up to the nearest 5-smooth edge.
        assert_eq!(engine_for_extent(1010.0, 1010.0, 8.0).unwrap().width(), 128);
        assert!(matches!(
            engine_for_extent(100_000.0, 100_000.0, 1.0),
            Err(OpcError::ClipTooLarge { .. })
        ));
    }

    #[test]
    fn perfect_mask_of_large_feature_scores_well() {
        let e = engine();
        let target = vec![Polygon::rect(
            Point::new(300.0, 300.0),
            Point::new(700.0, 700.0),
        )];
        let eval = evaluate_mask(
            &e,
            &target,
            &target,
            MeasureConvention::ViaEdgeCenters,
            0.02,
            40.0,
        )
        .unwrap();
        // A 400 nm feature printed from its own drawn mask with a
        // calibrated threshold: edge-centre EPE stays within a few nm
        // (corner rounding does not affect edge centres).
        assert!(
            eval.epe.mean_abs() < 4.0,
            "mean EPE {}",
            eval.epe.mean_abs()
        );
        assert!(eval.pvb_nm2 > 0.0, "PVB should be positive");
        assert!(eval.l2_nm2 < 400.0 * 400.0, "L2 {}", eval.l2_nm2);
    }

    #[test]
    fn bad_mask_scores_worse_than_good_mask() {
        let e = engine();
        let target = vec![Polygon::rect(
            Point::new(300.0, 300.0),
            Point::new(700.0, 700.0),
        )];
        // A mask drawn 60 nm undersized everywhere prints small.
        let bad_mask = vec![Polygon::rect(
            Point::new(360.0, 360.0),
            Point::new(640.0, 640.0),
        )];
        let good = evaluate_mask(
            &e,
            &target,
            &target,
            MeasureConvention::ViaEdgeCenters,
            0.02,
            60.0,
        )
        .unwrap();
        let bad = evaluate_mask(
            &e,
            &bad_mask,
            &target,
            MeasureConvention::ViaEdgeCenters,
            0.02,
            60.0,
        )
        .unwrap();
        assert!(bad.epe_sum_nm > good.epe_sum_nm);
        assert!(bad.l2_nm2 > good.l2_nm2);
    }

    #[test]
    fn metal_convention_uses_spacing() {
        let e = engine();
        let target = vec![Polygon::rect(
            Point::new(200.0, 450.0),
            Point::new(800.0, 550.0),
        )];
        let eval = evaluate_mask(
            &e,
            &target,
            &target,
            MeasureConvention::MetalSpacing(60.0),
            0.02,
            40.0,
        )
        .unwrap();
        // 600 nm edges -> 10 sites each; 100 nm edges -> 1 each: 22 sites.
        assert_eq!(eval.epe.values.len(), 22);
    }
}
