//! The full CardOPC pipeline (Fig. 2).
//!
//! ① SRAF insertion → ② dissection → control point generation →
//! iterate { ③ connect control points with cardinal splines →
//! ④ lithography simulation → ⑤ EPE estimation and control point moves } →
//! ⑥ mask rule checking and violation resolving.

use crate::config::OpcConfig;
use crate::control::OpcShape;
use crate::correct::{correct_shapes_recording, CorrectionStep};
use crate::dissect::dissect_polygon;
use crate::eval::{engine_for_extent, evaluate_mask, Evaluation, MeasureConvention};
use crate::sraf::insert_srafs;
use crate::OpcError;
use cardopc_geometry::{BBox, Point, Polygon};
use cardopc_layout::Clip;
use cardopc_litho::{LithoEngine, RasterCache};
use cardopc_mrc::{AreaPolicy, MrcResolver, ResolveConfig};
use cardopc_spline::SamplingPlan;

/// Result of a CardOPC run on one clip.
#[derive(Clone, Debug)]
pub struct OpcOutcome {
    /// The optimised mask shapes (main patterns and SRAFs).
    pub shapes: Vec<OpcShape>,
    /// Sum of |EPE| over all anchors, per iteration.
    pub epe_history: Vec<f64>,
    /// Final scores under the paper's metrics.
    pub evaluation: Evaluation,
    /// MRC violations found after optimisation, before resolving.
    pub mrc_initial_violations: usize,
    /// MRC violations left after resolving.
    pub mrc_remaining: usize,
    /// The calibrated resist threshold used.
    pub threshold: f64,
}

impl OpcOutcome {
    /// The final mask as sampled polygons (e.g. for rasterisation or
    /// export).
    pub fn mask_polygons(&self, samples_per_segment: usize) -> Vec<Polygon> {
        self.shapes
            .iter()
            .map(|s| s.spline.to_polygon(samples_per_segment))
            .collect()
    }
}

/// Output of the optimisation loop alone (steps ①–⑥ minus the final
/// scoring pass): what a tiled runtime needs when it evaluates the mask
/// itself over a sub-window.
#[derive(Clone, Debug)]
pub struct OptimizedShapes {
    /// The optimised mask shapes (main patterns and SRAFs).
    pub shapes: Vec<OpcShape>,
    /// Sum of |EPE| over all anchors, per iteration.
    pub epe_history: Vec<f64>,
    /// Per-iteration, per-shape |EPE| sums (`per_shape_epe[iter][shape]`,
    /// shape order matching [`OptimizedShapes::shapes`]; SRAF entries are
    /// `0.0`). Each row sums to the matching `epe_history` entry, letting
    /// callers re-aggregate convergence over a subset of shapes (e.g. the
    /// owner-tile shapes of a halo window).
    pub per_shape_epe: Vec<Vec<f64>>,
    /// MRC violations found after optimisation, before resolving.
    pub mrc_initial_violations: usize,
    /// MRC violations left after resolving.
    pub mrc_remaining: usize,
}

/// The CardOPC curvilinear OPC flow.
///
/// ```no_run
/// use cardopc_layout::via_clips;
/// use cardopc_opc::{CardOpc, OpcConfig};
///
/// let clip = &via_clips()[0];
/// let flow = CardOpc::new(OpcConfig::via());
/// let outcome = flow.run(clip)?;
/// println!("EPE sum: {:.1} nm", outcome.evaluation.epe_sum_nm);
/// # Ok::<(), cardopc_opc::OpcError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CardOpc {
    config: OpcConfig,
}

impl CardOpc {
    /// Creates the flow.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`OpcConfig::assert_valid`]).
    pub fn new(config: OpcConfig) -> Self {
        config.assert_valid();
        CardOpc { config }
    }

    /// The configuration.
    pub fn config(&self) -> &OpcConfig {
        &self.config
    }

    /// Initialisation phase: SRAF insertion, dissection, control point
    /// generation (Fig. 3).
    ///
    /// # Errors
    ///
    /// [`OpcError::EmptyClip`] for clips without targets, or spline errors
    /// for degenerate shapes.
    pub fn initialize(&self, clip: &Clip) -> Result<Vec<OpcShape>, OpcError> {
        if clip.targets().is_empty() {
            return Err(OpcError::EmptyClip);
        }
        let mut shapes = Vec::with_capacity(clip.targets().len());
        for target in clip.targets() {
            let segs = dissect_polygon(target, self.config.l_c, self.config.l_u);
            shapes.push(OpcShape::from_dissection_with_pull(
                &segs,
                self.config.tension,
                self.config.corner_pull,
            )?);
        }
        if let Some(sraf_cfg) = &self.config.sraf {
            let window = BBox::new(Point::ZERO, Point::new(clip.width(), clip.height()));
            let mut srafs = insert_srafs(clip.targets(), sraf_cfg, self.config.tension, window)?;
            // Make the assists rule-clean *before* optimisation: SRAFs stay
            // static through the correction loop, so fixing them afterwards
            // would change the imaging the mains converged against. Fixing
            // them now lets the loop converge around their final geometry
            // and leaves the end-of-flow MRC stage (step 6) a no-op for
            // assists.
            if let Some(rules) = self.config.mrc {
                let mut sraf_splines: Vec<_> = srafs.iter().map(|s| s.spline.clone()).collect();
                let resolver = MrcResolver::new(
                    rules,
                    ResolveConfig {
                        samples_per_segment: self.config.samples_per_segment,
                        ..ResolveConfig::default()
                    },
                );
                let report = resolver.resolve(&mut sraf_splines);
                // Assists that cannot be healed are expendable: better to
                // drop a rule-breaking assist than to ship it or deform
                // the converged mask later.
                let guilty: std::collections::HashSet<usize> =
                    report.remaining.iter().map(|v| v.shape).collect();
                let mut rebuilt = Vec::with_capacity(sraf_splines.len());
                for (i, spline) in sraf_splines.into_iter().enumerate() {
                    if !guilty.contains(&i) {
                        let mut shape = srafs[i].clone();
                        shape.spline = spline;
                        rebuilt.push(shape);
                    }
                }
                srafs = rebuilt;
            }
            shapes.extend(srafs);
        }
        Ok(shapes)
    }

    /// Runs the full flow on a clip, constructing a calibrated engine for
    /// the clip's extent.
    ///
    /// # Errors
    ///
    /// Any [`OpcError`]; see [`CardOpc::run_with_engine`].
    pub fn run(&self, clip: &Clip) -> Result<OpcOutcome, OpcError> {
        let engine = engine_for_extent(clip.width(), clip.height(), self.config.pitch)?;
        self.run_with_engine(clip, &engine)
    }

    /// Runs the full flow against a caller-provided engine (reuse across
    /// clips of identical extent amortises kernel construction).
    ///
    /// # Errors
    ///
    /// [`OpcError::EmptyClip`], [`OpcError::Litho`] on grid mismatches, or
    /// spline errors for degenerate shapes.
    pub fn run_with_engine(
        &self,
        clip: &Clip,
        engine: &LithoEngine,
    ) -> Result<OpcOutcome, OpcError> {
        let optimized = self.optimize_with_engine(clip, engine)?;
        let mask_polys: Vec<Polygon> = optimized
            .shapes
            .iter()
            .map(|s| s.spline.to_polygon(self.config.samples_per_segment))
            .collect();
        let convention = self.measure_convention();
        let evaluation = evaluate_mask(
            engine,
            &mask_polys,
            clip.targets(),
            convention,
            self.config.dose_delta,
            self.config.epe_search,
        )?;

        Ok(OpcOutcome {
            shapes: optimized.shapes,
            epe_history: optimized.epe_history,
            evaluation,
            mrc_initial_violations: optimized.mrc_initial_violations,
            mrc_remaining: optimized.mrc_remaining,
            threshold: engine.threshold(),
        })
    }

    /// Runs steps ①–⑥ (initialise, iterate, MRC resolve) against a
    /// caller-provided engine, without the final scoring pass.
    ///
    /// Tiled runtimes use this entry point when the evaluation window
    /// differs from the optimisation window (e.g. scoring only the core of
    /// a halo tile); [`CardOpc::run_with_engine`] is this plus
    /// [`evaluate_mask`] over the whole clip.
    ///
    /// # Errors
    ///
    /// [`OpcError::EmptyClip`], [`OpcError::Litho`] on grid mismatches, or
    /// spline errors for degenerate shapes.
    pub fn optimize_with_engine(
        &self,
        clip: &Clip,
        engine: &LithoEngine,
    ) -> Result<OptimizedShapes, OpcError> {
        let mut shapes = self.initialize(clip)?;
        let mut epe_history = Vec::with_capacity(self.config.iterations);
        let mut per_shape_epe = Vec::with_capacity(self.config.iterations);
        let mut step_limit = self.config.move_step;

        // Per-iteration simulation state, set up once. SRAFs are frozen
        // after initialisation, so their raster layer is cached; the main
        // shapes are re-sampled through the shared sampling plan into
        // reused polygon buffers; and the aerial image is restricted to
        // the pixel columns the EPE correction actually reads (the frozen
        // anchors' bilinear search footprints).
        let per = self.config.samples_per_segment;
        let plan = SamplingPlan::get(per, self.config.tension);
        let sraf_polys: Vec<Polygon> = shapes
            .iter()
            .filter(|s| s.is_sraf)
            .map(|s| s.spline.to_polygon(per))
            .collect();
        let mut cache = RasterCache::new(engine.width(), engine.height(), engine.pitch());
        cache.set_base(&sraf_polys);
        let roi = self.roi_columns(&shapes, engine);
        let mut main_polys: Vec<Polygon> = Vec::new();
        let mut samples: Vec<Point> = Vec::new();

        for iter in 0..self.config.iterations {
            if iter == self.config.decay_at {
                step_limit *= self.config.decay_factor;
            }
            if self.config.relax_every > 0 && iter > 0 && iter % self.config.relax_every == 0 {
                for shape in shapes.iter_mut().filter(|s| !s.is_sraf) {
                    crate::correct::relax_shape(shape, self.config.relax_strength);
                }
            }
            // ③ connect: resample the moving shapes. The reused polygon is
            // refilled in place when the fresh sample ring has the same
            // vertex count (`Polygon::new` may dedup near-coincident
            // samples, in which case the polygon is rebuilt).
            for (i, shape) in shapes.iter().filter(|s| !s.is_sraf).enumerate() {
                shape.spline.sample_into(&plan, &mut samples);
                match main_polys.get_mut(i) {
                    Some(poly) if poly.len() == samples.len() => {
                        poly.vertices_mut().copy_from_slice(&samples);
                    }
                    Some(poly) => *poly = Polygon::new(samples.clone()),
                    None => main_polys.push(Polygon::new(samples.clone())),
                }
            }
            // ④ simulate on the cached composite, restricted to the ROI.
            let mask = cache.composite(&main_polys);
            let aerial = match &roi {
                Some(cols) => engine.aerial_image_cols(mask, cols)?,
                None => engine.aerial_image(mask)?,
            };
            // ⑤ EPE feedback (shape-parallel on the shared pool).
            let mut per_shape = Vec::new();
            let total = correct_shapes_recording(
                &mut shapes,
                &aerial,
                engine.threshold(),
                &CorrectionStep {
                    step_limit,
                    smooth_window: self.config.smooth_window,
                    epe_search: self.config.epe_search,
                    spline_normals: self.config.spline_normals,
                },
                &mut per_shape,
            );
            epe_history.push(total);
            per_shape_epe.push(per_shape);
        }

        // ⑥ MRC check and resolve.
        let (mrc_initial, mrc_remaining) = if let Some(rules) = self.config.mrc {
            let mut splines: Vec<_> = shapes.iter().map(|s| s.spline.clone()).collect();
            let resolver = MrcResolver::new(
                rules,
                ResolveConfig {
                    area_policy: AreaPolicy::Keep,
                    samples_per_segment: self.config.samples_per_segment,
                    ..ResolveConfig::default()
                },
            );
            let report = resolver.resolve(&mut splines);
            for (shape, spline) in shapes.iter_mut().zip(splines) {
                shape.spline = spline;
            }
            (report.initial_violations, report.remaining.len())
        } else {
            (0, 0)
        };

        Ok(OptimizedShapes {
            shapes,
            epe_history,
            per_shape_epe,
            mrc_initial_violations: mrc_initial,
            mrc_remaining,
        })
    }

    /// The configured EPE measure point convention.
    pub fn measure_convention(&self) -> MeasureConvention {
        self.config.convention
    }

    /// The pixel columns the EPE feedback can read, or `None` when the
    /// restriction would not pay off.
    ///
    /// [`correct_shapes`] probes the aerial image only via [`epe_at`],
    /// which walks at most `epe_search + pitch/2` along each frozen
    /// anchor's normal and reads the grid bilinearly (one extra column on
    /// each side). Expanding every anchor's x-extent by
    /// `epe_search + 2·pitch` therefore covers every pixel the loop can
    /// touch, with margin.
    ///
    /// [`epe_at`]: cardopc_litho::epe_at
    fn roi_columns(&self, shapes: &[OpcShape], engine: &LithoEngine) -> Option<Vec<usize>> {
        let width = engine.width();
        let pitch = engine.pitch();
        if width == 0 {
            return None;
        }
        let margin = self.config.epe_search + 2.0 * pitch;
        let mut needed = vec![false; width];
        for shape in shapes.iter().filter(|s| !s.is_sraf) {
            for anchor in &shape.anchors {
                // `Grid::sample` reads columns floor(x/pitch - 0.5) and the
                // next one, clamped to the grid.
                let lo = ((anchor.position.x - margin) / pitch - 0.5)
                    .floor()
                    .max(0.0) as usize;
                let hi =
                    (((anchor.position.x + margin) / pitch - 0.5).floor() + 1.0).max(0.0) as usize;
                for flag in &mut needed[lo.min(width - 1)..=hi.min(width - 1)] {
                    *flag = true;
                }
            }
        }
        let cols: Vec<usize> = (0..width).filter(|&c| needed[c]).collect();
        // Near-full coverage: the pruned column pass would save nothing
        // over the fused full transform, so keep the simple path.
        if cols.len() * 10 >= width * 9 {
            None
        } else {
            Some(cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correct::correct_shapes;
    use cardopc_geometry::Point;

    /// A small clip with one 120 nm square, cheap enough for debug-mode
    /// end-to-end tests.
    fn small_clip() -> Clip {
        Clip::new(
            "unit",
            1000.0,
            1000.0,
            vec![Polygon::rect(
                Point::new(440.0, 440.0),
                Point::new(560.0, 560.0),
            )],
        )
    }

    fn fast_config() -> OpcConfig {
        OpcConfig {
            iterations: 6,
            decay_at: 4,
            pitch: 8.0,
            sraf: None,
            mrc: None,
            // The debug-friendly 8 nm pitch is too coarse for the
            // production relaxation cadence; these tests exercise the core
            // correction loop.
            relax_every: 0,
            ..OpcConfig::via()
        }
    }

    #[test]
    fn initialize_produces_shapes_with_anchors() {
        let flow = CardOpc::new(fast_config());
        let shapes = flow.initialize(&small_clip()).unwrap();
        assert_eq!(shapes.len(), 1);
        assert!(shapes[0].control_count() >= 8);
        assert_eq!(shapes[0].anchors.len(), shapes[0].control_count());
    }

    #[test]
    fn empty_clip_rejected() {
        let flow = CardOpc::new(fast_config());
        let empty = Clip::new("empty", 100.0, 100.0, vec![]);
        assert!(matches!(flow.run(&empty), Err(OpcError::EmptyClip)));
    }

    #[test]
    fn sraf_insertion_adds_shapes() {
        let mut cfg = fast_config();
        cfg.sraf = Some(crate::config::SrafConfig::default());
        let flow = CardOpc::new(cfg);
        let shapes = flow.initialize(&small_clip()).unwrap();
        assert!(shapes.len() > 1, "expected SRAFs around an isolated square");
        assert!(shapes.iter().skip(1).all(|s| s.is_sraf));
    }

    #[test]
    fn opc_reduces_epe_vs_uncorrected_mask() {
        // End-to-end: run a CardOPC flow with a realistic iteration budget
        // and verify the corrected mask scores better than printing the
        // raw target. (The spline mask starts smaller than the target due
        // to corner rounding, so it needs the paper's full-budget regime
        // to win; see the release-mode benches for the 32-iteration runs.)
        let clip = small_clip();
        let mut cfg = fast_config();
        cfg.iterations = 24;
        cfg.decay_at = 16;
        let flow = CardOpc::new(cfg);
        let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();

        let uncorrected = evaluate_mask(
            &engine,
            clip.targets(),
            clip.targets(),
            MeasureConvention::ViaEdgeCenters,
            0.02,
            40.0,
        )
        .unwrap();

        let outcome = flow.run_with_engine(&clip, &engine).unwrap();
        assert_eq!(outcome.epe_history.len(), 24);
        // A well-printing isolated 120 nm square needs little correction;
        // the corrected mask must not be materially worse on EPE and must
        // improve the full-image L2 (corner rounding).
        assert!(
            outcome.evaluation.epe_sum_nm <= 1.15 * uncorrected.epe_sum_nm,
            "OPC EPE {} vs uncorrected {}",
            outcome.evaluation.epe_sum_nm,
            uncorrected.epe_sum_nm
        );
        assert!(
            outcome.evaluation.l2_nm2 <= uncorrected.l2_nm2,
            "OPC L2 {} vs uncorrected {}",
            outcome.evaluation.l2_nm2,
            uncorrected.l2_nm2
        );
    }

    #[test]
    fn epe_history_trends_downward() {
        let clip = small_clip();
        let flow = CardOpc::new(fast_config());
        let outcome = flow.run(&clip).unwrap();
        let first = outcome.epe_history.first().copied().unwrap();
        let last = outcome.epe_history.last().copied().unwrap();
        assert!(
            last <= first,
            "EPE history should not increase: {first} -> {last}"
        );
    }

    #[test]
    fn mrc_stage_reports_and_resolves() {
        let mut cfg = fast_config();
        cfg.mrc = Some(cardopc_mrc::MrcRules::default());
        let flow = CardOpc::new(cfg);
        let outcome = flow.run(&small_clip()).unwrap();
        // Whatever was found must be (almost) fully resolved.
        assert!(outcome.mrc_remaining <= outcome.mrc_initial_violations);
    }

    #[test]
    fn optimized_loop_matches_reference_flow() {
        // The cached-raster + ROI-column + shape-parallel iteration loop
        // must reproduce the plain pipeline (full rasterisation and full
        // aerial image every iteration, written against public APIs only)
        // to within 1e-9, with identical MRC accounting.
        let clip = small_clip();
        let mut cfg = fast_config();
        cfg.sraf = Some(crate::config::SrafConfig::default());
        cfg.mrc = Some(cardopc_mrc::MrcRules::default());
        cfg.relax_every = 2;
        let flow = CardOpc::new(cfg.clone());
        let engine = engine_for_extent(clip.width(), clip.height(), cfg.pitch).unwrap();

        let mut shapes = flow.initialize(&clip).unwrap();
        let mut step_limit = cfg.move_step;
        let mut reference_history = Vec::new();
        for iter in 0..cfg.iterations {
            if iter == cfg.decay_at {
                step_limit *= cfg.decay_factor;
            }
            if cfg.relax_every > 0 && iter > 0 && iter % cfg.relax_every == 0 {
                for shape in shapes.iter_mut().filter(|s| !s.is_sraf) {
                    crate::correct::relax_shape(shape, cfg.relax_strength);
                }
            }
            let polys: Vec<Polygon> = shapes
                .iter()
                .map(|s| s.spline.to_polygon(cfg.samples_per_segment))
                .collect();
            let mask =
                cardopc_litho::rasterize(&polys, engine.width(), engine.height(), engine.pitch());
            let aerial = engine.aerial_image(&mask).unwrap();
            let total = correct_shapes(
                &mut shapes,
                &aerial,
                engine.threshold(),
                &CorrectionStep {
                    step_limit,
                    smooth_window: cfg.smooth_window,
                    epe_search: cfg.epe_search,
                    spline_normals: cfg.spline_normals,
                },
            );
            reference_history.push(total);
        }
        let mut splines: Vec<_> = shapes.iter().map(|s| s.spline.clone()).collect();
        let resolver = MrcResolver::new(
            cfg.mrc.unwrap(),
            ResolveConfig {
                area_policy: AreaPolicy::Keep,
                samples_per_segment: cfg.samples_per_segment,
                ..ResolveConfig::default()
            },
        );
        let reference_report = resolver.resolve(&mut splines);

        let outcome = flow.run_with_engine(&clip, &engine).unwrap();
        assert_eq!(outcome.epe_history.len(), reference_history.len());
        for (got, want) in outcome.epe_history.iter().zip(&reference_history) {
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "EPE history diverged: {got} vs {want}"
            );
        }
        assert_eq!(
            outcome.mrc_initial_violations,
            reference_report.initial_violations
        );
        assert_eq!(outcome.mrc_remaining, reference_report.remaining.len());
    }

    #[test]
    fn measure_convention_follows_preset() {
        assert_eq!(
            CardOpc::new(OpcConfig::via()).measure_convention(),
            MeasureConvention::ViaEdgeCenters
        );
        assert_eq!(
            CardOpc::new(OpcConfig::metal()).measure_convention(),
            MeasureConvention::MetalSpacing(60.0)
        );
    }
}
