//! # cardopc-opc
//!
//! The CardOPC curvilinear OPC flow — the paper's primary contribution —
//! plus the rectilinear baselines it is compared against.
//!
//! The pipeline follows Fig. 2 of the paper:
//!
//! 1. **Initialisation** (§III-B): rule-based [SRAF insertion](insert_srafs)
//!    (Fig. 3(a)), [corner-aware edge dissection](dissect_polygon)
//!    (Fig. 3(b)), and control point generation with corner interpolation
//!    ([`OpcShape::from_dissection`], Fig. 3(c)).
//! 2. **Optimisation** (§III-C/E): control points connected by cardinal
//!    splines, lithography simulation, EPE feedback with normal-vector
//!    moves (Eq. 6–8) and neighbour-blended move vectors (Eq. 7), with the
//!    paper's step-decay schedule.
//! 3. **MRC** (§III-F): mask rule checking and violation resolving via
//!    `cardopc-mrc`.
//!
//! Baselines ([`RectOpc`]): a Calibre-like rectilinear OPC and the
//! SimpleOPC configuration of \[45\].
//!
//! ```no_run
//! use cardopc_layout::via_clips;
//! use cardopc_opc::{CardOpc, OpcConfig};
//!
//! let outcome = CardOpc::new(OpcConfig::via()).run(&via_clips()[0])?;
//! println!(
//!     "EPE {:.1} nm, PVB {:.0} nm², {} MRC violations remaining",
//!     outcome.evaluation.epe_sum_nm,
//!     outcome.evaluation.pvb_nm2,
//!     outcome.mrc_remaining,
//! );
//! # Ok::<(), cardopc_opc::OpcError>(())
//! ```

#![warn(missing_docs)]

mod baseline;
mod config;
mod control;
mod correct;
mod dissect;
mod error;
mod eval;
mod flow;
mod sraf;

pub use baseline::{RectOpc, RectOpcConfig, RectOutcome};
pub use config::{OpcConfig, SrafConfig};
pub use control::OpcShape;
pub use correct::{
    correct_shapes, correct_shapes_recording, correct_shapes_with_pool, outward_normals,
    relax_shape, CorrectScratch, CorrectionStep,
};
pub use dissect::{dissect_polygon, DissectedSegment};
pub use error::OpcError;
pub use eval::{
    engine_for_extent, engine_for_extent_at, evaluate_mask, evaluate_mask_grid,
    evaluate_mask_grid_with, raster_for_engine, EvalScratch, Evaluation, MeasureConvention,
    EPE_TOLERANCE,
};
pub use flow::{CardOpc, OpcOutcome, OptimizedShapes};
pub use sraf::insert_srafs;
