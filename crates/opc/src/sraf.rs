//! Rule-based SRAF insertion (Fig. 3(a)).
//!
//! For every sufficiently long main-pattern edge an assist feature of
//! length `l_s = r·l_m` is placed `d_ms` away from the edge, parallel to
//! it, provided the spot is free of other patterns and SRAFs. The paper
//! also allows SRAFs from external tools or ILT fitting (§III-G); this
//! module is the built-in rule-based path.

use crate::config::SrafConfig;
use crate::control::OpcShape;
use cardopc_geometry::{BBox, Point, Polygon, RTree};
use cardopc_spline::SplineError;

/// Generates SRAF shapes for a set of target polygons.
///
/// Returns the assist features as [`OpcShape`]s (uniform spline
/// representation, as §III-B prescribes). Placement is collision-checked
/// against the targets and already-placed SRAFs with an R-tree.
///
/// # Errors
///
/// Propagates [`SplineError`] if an SRAF loop is degenerate (cannot happen
/// for positive dimensions, but the constructor is fallible).
pub fn insert_srafs(
    targets: &[Polygon],
    config: &SrafConfig,
    tension: f64,
    window: BBox,
) -> Result<Vec<OpcShape>, SplineError> {
    let mut occupied: RTree<()> =
        RTree::bulk_load(targets.iter().map(|t| (t.bbox(), ())).collect());

    let mut srafs = Vec::new();
    for target in targets {
        let ccw = target.clone().into_ccw();
        for edge in ccw.edges() {
            let l_m = edge.length();
            if l_m < config.min_edge {
                continue;
            }
            let Some(dir) = edge.delta().normalized() else {
                continue;
            };
            let outward = -dir.perp();
            let l_s = config.length_ratio * l_m;

            // SRAF rectangle: centred on the edge, d_ms away, w wide.
            let center = edge.midpoint() + outward * (config.distance + config.width * 0.5);
            let half_len = dir * (l_s * 0.5);
            let half_wid = outward * (config.width * 0.5);
            let corners = [
                center - half_len - half_wid,
                center + half_len - half_wid,
                center + half_len + half_wid,
                center - half_len + half_wid,
            ];
            let bbox = BBox::from_points(corners.iter().copied());

            if !window.contains_bbox(&bbox) {
                continue;
            }
            // Keep clear of everything already on the mask (with a margin
            // of half the SRAF-to-pattern distance).
            let clearance = bbox.expanded(config.distance * 0.4);
            if occupied
                .query_indices(&clearance)
                .into_iter()
                .next()
                .is_some()
            {
                continue;
            }

            occupied.insert(bbox, ());
            srafs.push(OpcShape::sraf(sraf_control_points(&corners), tension)?);
        }
    }
    Ok(srafs)
}

/// Control points for an SRAF rectangle: a stadium-shaped loop — evenly
/// spaced points along each long edge plus one cap point per short edge.
/// Unlike an ellipse (whose tapering tips trip width probes) the stadium
/// keeps near-constant width along its length with blunt, large-radius
/// caps; long edges get a control point roughly every 60 nm so the spline
/// cannot sag below the width rules between points.
///
/// `corners` are in order: the edge `corners[0] -> corners[1]` and the
/// edge `corners[2] -> corners[3]` are the long sides.
fn sraf_control_points(corners: &[Point; 4]) -> Vec<Point> {
    let side_len = corners[0].distance(corners[1]);
    let n_side = ((side_len / 60.0).ceil() as usize).max(2);
    let side = |a: Point, b: Point, out: &mut Vec<Point>| {
        for k in 0..n_side {
            // Spread between 15% and 85% of the edge, leaving the caps room.
            let t = 0.15 + 0.7 * k as f64 / (n_side - 1) as f64;
            out.push(a.lerp(b, t));
        }
    };
    let mut pts = Vec::with_capacity(2 * n_side + 2);
    side(corners[0], corners[1], &mut pts);
    pts.push(corners[1].lerp(corners[2], 0.5)); // cap
    side(corners[2], corners[3], &mut pts);
    pts.push(corners[3].lerp(corners[0], 0.5)); // cap
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> BBox {
        BBox::new(Point::ZERO, Point::new(2000.0, 2000.0))
    }

    #[test]
    fn isolated_square_gets_four_srafs() {
        let target = Polygon::rect(Point::new(900.0, 900.0), Point::new(1000.0, 1000.0));
        let srafs = insert_srafs(&[target], &SrafConfig::default(), 0.6, window()).unwrap();
        assert_eq!(srafs.len(), 4);
        for s in &srafs {
            assert!(s.is_sraf);
            assert!(s.control_count() >= 6);
        }
    }

    #[test]
    fn srafs_at_configured_distance() {
        let target = Polygon::rect(Point::new(900.0, 900.0), Point::new(1000.0, 1000.0));
        let cfg = SrafConfig::default();
        let srafs = insert_srafs(std::slice::from_ref(&target), &cfg, 0.6, window()).unwrap();
        for s in &srafs {
            let poly = s.spline.to_polygon(4);
            let gap = poly
                .vertices()
                .iter()
                .map(|&v| target.boundary_distance(v))
                .fold(f64::INFINITY, f64::min);
            // Nearest SRAF boundary point sits roughly d_ms away (the
            // spline rounds corners, so allow slack).
            assert!(
                (gap - cfg.distance).abs() < 15.0,
                "SRAF gap {gap}, expected ~{}",
                cfg.distance
            );
        }
    }

    #[test]
    fn short_edges_get_no_sraf() {
        let tiny = Polygon::rect(Point::new(900.0, 900.0), Point::new(940.0, 940.0));
        let cfg = SrafConfig {
            min_edge: 60.0,
            ..SrafConfig::default()
        };
        let srafs = insert_srafs(&[tiny], &cfg, 0.6, window()).unwrap();
        assert!(srafs.is_empty());
    }

    #[test]
    fn close_neighbours_suppress_srafs_between() {
        // Two squares 150 nm apart: the space between is too tight for a
        // 100 nm-distance SRAF with clearance, so facing edges get none.
        let a = Polygon::rect(Point::new(700.0, 900.0), Point::new(800.0, 1000.0));
        let b = Polygon::rect(Point::new(950.0, 900.0), Point::new(1050.0, 1000.0));
        let srafs = insert_srafs(
            &[a.clone(), b.clone()],
            &SrafConfig::default(),
            0.6,
            window(),
        )
        .unwrap();
        // Fewer than the 8 an isolated pair would receive.
        assert!(srafs.len() < 8, "got {} SRAFs", srafs.len());
        // And none of them overlaps a target.
        for s in &srafs {
            let sb = s.spline.to_polygon(4).bbox();
            assert!(!sb.intersects(&a.bbox()));
            assert!(!sb.intersects(&b.bbox()));
        }
    }

    #[test]
    fn srafs_respect_window() {
        // Target near the window edge: outward SRAF would leave the window.
        let target = Polygon::rect(Point::new(20.0, 900.0), Point::new(120.0, 1000.0));
        let srafs = insert_srafs(&[target], &SrafConfig::default(), 0.6, window()).unwrap();
        for s in &srafs {
            assert!(window().contains_bbox(&s.spline.to_polygon(4).bbox()));
        }
        assert!(srafs.len() < 4);
    }

    #[test]
    fn sraf_length_scales_with_edge() {
        let target = Polygon::rect(Point::new(700.0, 900.0), Point::new(1000.0, 1000.0));
        let cfg = SrafConfig::default();
        let srafs = insert_srafs(&[target], &cfg, 0.6, window()).unwrap();
        // The long (300 nm) edges get SRAFs of ~0.6*300 = 180 nm span.
        let has_long = srafs.iter().any(|s| {
            let b = s.spline.to_polygon(4).bbox();
            (b.width() - 180.0).abs() < 30.0 || (b.height() - 180.0).abs() < 30.0
        });
        assert!(has_long);
    }
}
