//! Property-based tests for the OPC flow components.

use cardopc_geometry::{Point, Polygon, SplitMix64};
use cardopc_opc::{dissect_polygon, outward_normals, OpcShape};
use proptest::prelude::*;

fn random_rect(seed: u64) -> Polygon {
    let mut rng = SplitMix64::new(seed);
    let x0 = rng.range_f64(0.0, 500.0);
    let y0 = rng.range_f64(0.0, 500.0);
    Polygon::rect(
        Point::new(x0, y0),
        Point::new(
            x0 + rng.range_f64(50.0, 400.0),
            y0 + rng.range_f64(50.0, 400.0),
        ),
    )
}

proptest! {
    /// Dissection covers the boundary exactly, walk-continuously, for any
    /// rectangle and any (positive) dissection lengths.
    #[test]
    fn dissection_covers_boundary(seed in 0u64..500, l_c in 5.0..60.0f64, l_u in 10.0..120.0f64) {
        let poly = random_rect(seed);
        let segs = dissect_polygon(&poly, l_c, l_u);
        let total: f64 = segs.iter().map(|s| s.length()).sum();
        prop_assert!((total - poly.perimeter()).abs() < 1e-6);
        for w in segs.windows(2) {
            prop_assert!(w[0].b.distance(w[1].a) < 1e-9);
        }
        // Closure: last segment ends at the first segment's start.
        prop_assert!(segs.last().unwrap().b.distance(segs[0].a) < 1e-9);
    }

    /// No dissected segment is longer than the uniform length (plus the
    /// corner allowance when edges are short).
    #[test]
    fn dissection_segment_lengths_bounded(seed in 0u64..500, l_c in 5.0..50.0f64, l_u in 10.0..100.0f64) {
        let poly = random_rect(seed);
        for s in dissect_polygon(&poly, l_c, l_u) {
            if s.is_corner {
                prop_assert!(s.length() <= 2.0 * l_c + 1e-9);
            } else {
                prop_assert!(s.length() <= l_u + 1e-9);
            }
        }
    }

    /// Dissection outward normals always point away from the rectangle
    /// centroid.
    #[test]
    fn dissection_normals_outward(seed in 0u64..500) {
        let poly = random_rect(seed);
        let c = poly.centroid();
        for s in dissect_polygon(&poly, 20.0, 40.0) {
            let m = s.midpoint();
            prop_assert!((m + s.outward).distance(c) > m.distance(c));
            prop_assert!((s.outward.norm() - 1.0).abs() < 1e-12);
        }
    }

    /// Shape initialisation: anchors lie on the target boundary and the
    /// control point count equals the segment count, for any corner pull.
    #[test]
    fn shape_init_anchor_invariants(seed in 0u64..300, pull in -1.5..1.5f64) {
        let poly = random_rect(seed);
        let segs = dissect_polygon(&poly, 20.0, 40.0);
        let shape = OpcShape::from_dissection_with_pull(&segs, 0.6, pull).unwrap();
        prop_assert_eq!(shape.control_count(), segs.len());
        prop_assert_eq!(shape.anchors.len(), segs.len());
        for a in &shape.anchors {
            prop_assert!(poly.boundary_distance(a.position) < 1e-9);
        }
    }

    /// The initial spline area stays within a sane band of the target area
    /// for the paper's corner treatment.
    #[test]
    fn initial_spline_area_reasonable(seed in 0u64..300) {
        let poly = random_rect(seed);
        let segs = dissect_polygon(&poly, 20.0, 40.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        let area = shape.spline.to_polygon(8).area();
        prop_assert!(area > 0.5 * poly.area() && area < 1.3 * poly.area(),
                     "initial area {} vs target {}", area, poly.area());
    }

    /// Outward normals of an initialised shape are unit length and point
    /// away from the shape centroid (convex targets).
    #[test]
    fn shape_outward_normals(seed in 0u64..300) {
        let poly = random_rect(seed);
        let segs = dissect_polygon(&poly, 20.0, 40.0);
        let shape = OpcShape::from_dissection(&segs, 0.6).unwrap();
        let c = poly.centroid();
        for (i, n) in outward_normals(&shape).iter().enumerate() {
            let p = shape.spline.control_points()[i];
            prop_assert!((n.norm() - 1.0).abs() < 1e-9);
            prop_assert!((p + *n).distance(c) > p.distance(c) - 1e-9, "cp {i}");
        }
    }
}
