//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! This workspace builds in containers with no crates.io access, so the real
//! proptest cannot be fetched. This crate implements exactly the API subset
//! the workspace's `tests/properties.rs` files use — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, the [`Strategy`] trait
//! with `prop_map`, and range/tuple strategies — on top of a deterministic
//! SplitMix64 generator, so the property tests keep their exact source form.
//!
//! Differences from the real crate: no shrinking (failures report the
//! generated inputs instead), and case generation is deterministic per test
//! (seeded from the test's module path and name). The case count defaults to
//! 64 and can be raised via `PROPTEST_CASES`.

use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Why a generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate a fresh one.
    Reject(String),
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Seeds from a test name (FNV-1a hash), so every property test draws an
    /// independent deterministic stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`.
///
/// Only generation is supported; there is no shrinking tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Always produces a clone of the given value (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Declares property tests. See the crate docs for supported syntax:
/// `fn name(arg in strategy, ...) { body }` with optional attributes.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::case_count();
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0usize;
                let mut attempts = 0usize;
                while accepted < cases {
                    attempts += 1;
                    assert!(
                        attempts <= cases.saturating_mul(100),
                        "proptest '{}': too many rejected cases",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property '{}' failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            format!(concat!($(stringify!($arg), " = {:?} "),*), $(&$arg),*)
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)*) => {{
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

/// Rejects the current case (draw a fresh one) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let f = Strategy::generate(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = Strategy::generate(&(5usize..9), &mut rng);
            assert!((5..9).contains(&i));
            let j = Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&j));
        }
    }

    proptest! {
        #[test]
        fn macro_works(a in 0u64..100, b in 0.0..1.0f64) {
            prop_assume!(a != 13);
            prop_assert!(b < 1.0);
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(a in 0u64..10) {
                prop_assert!(a > 100, "a was {}", a);
            }
        }
        always_fails();
    }

    #[test]
    fn prop_map_and_tuples() {
        use crate::Strategy;
        let s = (0.0..1.0f64, 0.0..1.0f64).prop_map(|(x, y)| x + y);
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0.0..2.0).contains(&v));
        }
    }
}
