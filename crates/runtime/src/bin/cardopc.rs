//! `cardopc` — command-line tiled full-chip OPC runner.
//!
//! Runs the CardOPC flow over a (synthetic) large-scale design through
//! the tiled runtime: partition into halo tiles, correct tiles over the
//! worker pool, checkpoint each finished tile, stitch, and report a run
//! manifest.
//!
//! ```text
//! cargo run --release -p cardopc-runtime --bin cardopc -- \
//!     --design gcd --quick --run-dir out/gcd-quick
//! ```
//!
//! Interrupted runs (Ctrl-C, crash, or a deliberate `--max-tiles` budget)
//! resume from the run directory: tiles whose checkpoint records still
//! match their input hash are skipped.

use cardopc_layout::{design_tiles, Clip, DesignKind};
use cardopc_litho::WorkerPool;
use cardopc_opc::OpcConfig;
use cardopc_runtime::{run_clip, RunConfig, TilingConfig};
use std::process::ExitCode;

const USAGE: &str = "\
cardopc — tiled full-chip curvilinear OPC runner

USAGE:
    cardopc [OPTIONS]

OPTIONS:
    --design <gcd|aes|dynamicnode>  synthetic design to correct [gcd]
    --design-tiles <N>              concatenate N 30x30 um design tiles [1]
    --crop <NM>                     crop a centred NM x NM window first
    --tile <NM>                     core tile size [4096]
    --halo <NM>                     halo margin per side [1024]
    --pitch <NM>                    simulation pixel pitch [8]
    --iterations <N>                OPC iterations [10]
    --workers <N>                   worker pool size [CARDOPC_THREADS/auto]
    --run-dir <PATH>                checkpoint + manifest directory
    --max-tiles <N>                 execute at most N tiles, then stop
    --quick                         small smoke preset: gcd, 2048 nm crop,
                                    1024 nm tiles, 512 nm halo, 4 iterations
    --help                          print this help
";

struct Args {
    design: DesignKind,
    design_tiles: usize,
    crop: Option<f64>,
    tile: f64,
    halo: f64,
    pitch: f64,
    iterations: usize,
    workers: Option<usize>,
    run_dir: Option<String>,
    max_tiles: Option<usize>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            design: DesignKind::Gcd,
            design_tiles: 1,
            crop: None,
            tile: 4096.0,
            halo: 1024.0,
            pitch: 8.0,
            iterations: 10,
            workers: None,
            run_dir: None,
            max_tiles: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--design" => {
                    args.design = match value()?.as_str() {
                        "gcd" => DesignKind::Gcd,
                        "aes" => DesignKind::Aes,
                        "dynamicnode" => DesignKind::DynamicNode,
                        other => return Err(format!("unknown design '{other}'")),
                    }
                }
                "--design-tiles" => args.design_tiles = parse_num(&flag, &value()?)?,
                "--crop" => args.crop = Some(parse_num(&flag, &value()?)?),
                "--tile" => args.tile = parse_num(&flag, &value()?)?,
                "--halo" => args.halo = parse_num(&flag, &value()?)?,
                "--pitch" => args.pitch = parse_num(&flag, &value()?)?,
                "--iterations" => args.iterations = parse_num(&flag, &value()?)?,
                "--workers" => args.workers = Some(parse_num(&flag, &value()?)?),
                "--run-dir" => args.run_dir = Some(value()?),
                "--max-tiles" => args.max_tiles = Some(parse_num(&flag, &value()?)?),
                "--quick" => {
                    args.design = DesignKind::Gcd;
                    args.design_tiles = 1;
                    args.crop = Some(2048.0);
                    args.tile = 1024.0;
                    args.halo = 512.0;
                    args.pitch = 8.0;
                    args.iterations = 4;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
            }
        }
        Ok(args)
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse '{raw}'"))
}

/// Builds the input clip: `count` design tiles side by side, optionally
/// cropped to a centred window.
fn build_clip(kind: DesignKind, count: usize, crop: Option<f64>) -> Clip {
    let tiles: Vec<Clip> = design_tiles(kind, count.max(1)).collect();
    let tile_w = tiles[0].width();
    let tile_h = tiles[0].height();
    let mut shapes = Vec::new();
    for (i, tile) in tiles.iter().enumerate() {
        let dx = cardopc_geometry::Point::new(i as f64 * tile_w, 0.0);
        shapes.extend(tile.targets().iter().map(|t| t.translated(dx)));
    }
    let clip = Clip::new(
        format!("{}x{}", kind.name(), count.max(1)),
        tile_w * count.max(1) as f64,
        tile_h,
        shapes,
    );
    match crop {
        Some(size) => {
            let origin = cardopc_geometry::Point::new(
                ((clip.width() - size) * 0.5).max(0.0),
                ((clip.height() - size) * 0.5).max(0.0),
            );
            let name = format!("{}@{}", clip.name(), size);
            clip.crop_intersecting(origin, size, size, name)
        }
        None => clip,
    }
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let clip = build_clip(args.design, args.design_tiles, args.crop);
    let mut opc = OpcConfig::large_scale();
    opc.pitch = args.pitch;
    opc.iterations = args.iterations;

    let config = RunConfig {
        opc,
        tiling: TilingConfig {
            tile_size: args.tile,
            halo: args.halo,
        },
        run_dir: args.run_dir.as_ref().map(Into::into),
        max_tiles: args.max_tiles,
    };

    let local_pool;
    let pool = match args.workers {
        Some(n) => {
            local_pool = WorkerPool::new(n.max(1));
            &local_pool
        }
        None => WorkerPool::global(),
    };

    eprintln!(
        "cardopc: {} ({} targets), tile {} nm + halo {} nm, pitch {} nm, {} workers",
        clip.name(),
        clip.targets().len(),
        args.tile,
        args.halo,
        args.pitch,
        pool.parallelism()
    );

    let outcome = match run_clip(&clip, &config, pool) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cardopc: error: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", outcome.manifest.render_table());
    println!(
        "executed {} resumed {} remaining {}",
        outcome.manifest.executed, outcome.manifest.resumed, outcome.manifest.remaining
    );
    if let Some(dir) = &config.run_dir {
        if outcome.complete {
            println!("manifest: {}", dir.join("manifest.json").display());
        } else {
            println!(
                "partial run ({} tiles left): re-run with the same --run-dir to resume",
                outcome.manifest.remaining
            );
        }
    }
    ExitCode::SUCCESS
}
