//! Content-addressed cross-job tile correction cache.
//!
//! Real layouts are massively repetitive: standard cells and via arrays
//! recur across the chip (and across jobs), so full-chip OPC cost should
//! scale with the number of *unique* tile patterns, not with area. This
//! module maps a **canonical tile key** — a translation-normalised hash of
//! the tile's halo-inclusive geometry plus the full `OpcConfig` — to the
//! tile's corrected output stored *window-relative*, so a hit is replayed
//! by pure translation into any congruent tile anywhere on the chip or in
//! a later job.
//!
//! Key canonicalisation ([`tile_cache_key`]): the partitioner already
//! rebases every target into window coordinates (chip position minus the
//! window origin), so hashing those vertices — plus the window extent,
//! the `(tile_size, halo)` split (the ownership core's position within
//! the window depends on it), each target's ownership flag, and every
//! `OpcConfig` field — erases the tile's absolute position while keeping
//! everything the correction depends on. Positional identity (tile index,
//! grid coordinates, origin, global target ids) is deliberately excluded.
//! Floats hash through the canonicalising [`Fnv`] writer, so `-0.0` vs
//! `0.0` bit patterns cannot cause a spurious miss.
//!
//! What is stored ([`CachedTile`]): the owned main shapes (tagged with
//! their *local* target index) and **all** assist features of the window,
//! in the optimizer's output order, window-relative. SRAF seam ownership
//! is decided at replay time by the *replaying* tile's own owner test —
//! an edge tile and an interior tile can legally share a key yet keep
//! different halo assists, because the clamped owner grid treats the chip
//! boundary differently. Storing the full assist set and filtering late
//! makes a replay bit-identical to a cold run by construction: both paths
//! materialise records through the same code.
//!
//! Concurrency: a lock-striped index (16 shards) with **single-flight**
//! de-duplication. The first thread to miss a key installs an in-flight
//! marker and corrects; concurrent requesters of the same key block on
//! the shard's condvar (with a cancellation-aware timeout) and receive
//! the finished value as a hit. A failed leader removes the marker and
//! wakes the waiters, the first of which becomes the next leader. Waiting
//! threads belong to the scheduler's worker pool; the pool's nested-run
//! protocol degrades a blocked submitter to draining its own queue, so a
//! waiter can never deadlock the leader's litho work.
//!
//! Eviction mirrors the serve layer's terminal-job retention: the store
//! is bounded by entry count and byte budget, evicting the
//! least-recently-hit entry first and counting evictions.
//!
//! Persistence reuses the checkpoint file discipline: an append-only
//! `cache.jsonl` of self-describing lines (a torn final line from a
//! killed process parses as garbage and is skipped; the last line per key
//! wins), a `cache.lock` PID file with stale-lock reclaim, and a
//! compaction rewrite on drop when the file has accumulated dead lines.
//! A directory locked by a live process degrades to a read-only open (the
//! store is still consulted and new corrections are kept in memory for
//! the run, just not written back).

use crate::checkpoint::{
    acquire_pid_lock, hash_config, metrics_json, parse_metrics, Fnv, TileMetrics,
};
use crate::json::Json;
use crate::partition::{Tile, TilingConfig};
use crate::RuntimeError;
use cardopc_geometry::Point;
use cardopc_opc::OpcConfig;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Bumped whenever the key composition or the stored-value semantics
/// change, so stale stores from older builds can never replay.
const KEY_VERSION: u8 = 1;

/// Entry line format version.
const ENTRY_VERSION: f64 = 1.0;

/// Lock stripes of the index.
const SHARDS: usize = 16;

/// How long a single-flight waiter sleeps between cancellation checks.
const WAIT_SLICE: Duration = Duration::from_millis(50);

// ------------------------------------------------------------------ key

/// The canonical, translation-normalised content key of a tile.
///
/// Two tiles share a key exactly when their halo windows hold bitwise
/// congruent geometry (same window-relative target vertices, same
/// ownership flags), the same `(tile_size, halo)` split, and the same
/// complete OPC configuration — in which case their corrections are the
/// same pure function of the window and one can replay for the other by
/// translation. Tile position (index, grid cell, origin) and global
/// target ids are excluded; they are reapplied at replay time.
pub fn tile_cache_key(tile: &Tile, tiling: &TilingConfig, config: &OpcConfig) -> u64 {
    let mut h = Fnv::new();
    h.write(&[KEY_VERSION]);
    h.write_f64(tile.clip.width());
    h.write_f64(tile.clip.height());
    // The core's placement inside the window — and thus PV-band
    // restriction and SRAF seam ownership — depends on the split, not
    // just the window extent.
    h.write_f64(tiling.tile_size);
    h.write_f64(tiling.halo);
    h.write_usize(tile.clip.targets().len());
    for (target, owned) in tile.clip.targets().iter().zip(&tile.owned) {
        h.write(&[*owned as u8]);
        h.write_usize(target.len());
        for v in target.vertices() {
            // Window-relative coordinates: the partitioner already
            // subtracted the window origin.
            h.write_f64(v.x);
            h.write_f64(v.y);
        }
    }
    hash_config(&mut h, config);
    h.0
}

// ---------------------------------------------------------------- values

/// One corrected shape in window coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedShape {
    /// For main patterns, the index of the corrected target in the tile
    /// clip's target list (always an *owned* target). `None` marks an
    /// assist feature.
    pub target: Option<usize>,
    /// Cardinal tension of the shape's spline.
    pub tension: f64,
    /// Control points, window coordinates.
    pub control_points: Vec<Point>,
}

/// The cached correction of one tile pattern, window-relative.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedTile {
    /// Per-iteration |EPE| sums over the tile's owned targets.
    pub owned_epe_history: Vec<f64>,
    /// Per-iteration |EPE| sums over the whole halo window.
    pub epe_history: Vec<f64>,
    /// Owned mains followed by **every** window assist, in optimizer
    /// output order. Assist seam filtering happens at replay.
    pub shapes: Vec<CachedShape>,
    /// Tile metrics (position-independent: EPE over owned sites, PV band
    /// over the core, MRC over the window).
    pub metrics: TileMetrics,
    /// Wall seconds the original (cold) correction took.
    pub seconds: f64,
}

impl CachedTile {
    /// Serialises the entry as one compact JSON line (no newline).
    fn to_json_line(&self, key: u64) -> String {
        let shapes = Json::Arr(
            self.shapes
                .iter()
                .map(|s| {
                    let mut cps = Vec::with_capacity(2 * s.control_points.len());
                    for p in &s.control_points {
                        cps.push(p.x);
                        cps.push(p.y);
                    }
                    Json::obj(vec![
                        ("t", s.target.map_or(Json::Null, Json::num_usize)),
                        ("tension", Json::Num(s.tension)),
                        ("cps", Json::num_arr(&cps)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("v", Json::Num(ENTRY_VERSION)),
            ("key", Json::Str(format!("{key:016x}"))),
            ("owned_epe", Json::num_arr(&self.owned_epe_history)),
            ("epe", Json::num_arr(&self.epe_history)),
            ("metrics", metrics_json(&self.metrics)),
            ("seconds", Json::Num(self.seconds)),
            ("shapes", shapes),
        ])
        .to_string_compact()
    }

    /// Parses one JSONL line back into `(key, entry)`.
    fn from_json_line(line: &str) -> Result<(u64, CachedTile), String> {
        let v = Json::parse(line)?;
        if v.get("v").and_then(Json::as_f64) != Some(ENTRY_VERSION) {
            return Err("unknown cache entry version".into());
        }
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field {key}"));
        let key = u64::from_str_radix(field("key")?.as_str().ok_or("bad key")?, 16)
            .map_err(|_| "bad key".to_string())?;
        let floats = |name: &str| -> Result<Vec<f64>, String> {
            field(name)?
                .as_arr()
                .ok_or_else(|| format!("bad array {name}"))?
                .iter()
                .map(|j| j.as_f64().ok_or_else(|| format!("bad number in {name}")))
                .collect()
        };
        let owned_epe_history = floats("owned_epe")?;
        let epe_history = floats("epe")?;
        let metrics = parse_metrics(field("metrics")?)?;
        let seconds = field("seconds")?.as_f64().ok_or("bad seconds")?;
        let mut shapes = Vec::new();
        for s in field("shapes")?.as_arr().ok_or("bad shapes")? {
            let target = match s.get("t").ok_or("missing shape target")? {
                Json::Null => None,
                j => Some(j.as_usize().ok_or("bad shape target")?),
            };
            let tension = s
                .get("tension")
                .and_then(Json::as_f64)
                .ok_or("bad tension")?;
            let flat = s.get("cps").and_then(Json::as_arr).ok_or("bad cps")?;
            if flat.len() % 2 != 0 {
                return Err("odd cps length".into());
            }
            let mut control_points = Vec::with_capacity(flat.len() / 2);
            for pair in flat.chunks_exact(2) {
                let x = pair[0].as_f64().ok_or("bad cp")?;
                let y = pair[1].as_f64().ok_or("bad cp")?;
                control_points.push(Point::new(x, y));
            }
            shapes.push(CachedShape {
                target,
                tension,
                control_points,
            });
        }
        Ok((
            key,
            CachedTile {
                owned_epe_history,
                epe_history,
                shapes,
                metrics,
                seconds,
            },
        ))
    }
}

// ---------------------------------------------------------------- config

/// Tile cache configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheConfig {
    /// Backing directory; `None` keeps the cache in memory only (still
    /// shared across jobs within the process).
    pub dir: Option<PathBuf>,
    /// Maximum live entries before LRU eviction.
    pub max_entries: usize,
    /// Maximum live bytes (serialised-line accounting) before eviction.
    pub max_bytes: u64,
    /// Consult the store but never write the backing file. Corrections
    /// are still kept in memory for the life of the process.
    pub read_only: bool,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            dir: None,
            max_entries: 65_536,
            max_bytes: 256 * 1024 * 1024,
            read_only: false,
        }
    }
}

/// A point-in-time snapshot of cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the store (including single-flight waits).
    pub hits: u64,
    /// Lookups that corrected and inserted.
    pub misses: u64,
    /// Entries evicted by the budget.
    pub evicted: u64,
    /// Live entries.
    pub entries: u64,
    /// Live bytes (serialised accounting).
    pub bytes: u64,
}

// ----------------------------------------------------------------- store

struct Entry {
    value: Arc<CachedTile>,
    bytes: u64,
    last_hit: u64,
}

enum Slot {
    Ready(Entry),
    /// A leader is correcting this key right now.
    InFlight,
}

struct Shard {
    map: Mutex<HashMap<u64, Slot>>,
    cond: Condvar,
}

/// The shared, bounded, content-addressed tile store. See the module docs
/// for the full design.
pub struct TileCache {
    shards: Vec<Shard>,
    /// Append handle to `cache.jsonl`; `None` in memory-only or
    /// read-only mode.
    writer: Option<Mutex<std::fs::File>>,
    dir: Option<PathBuf>,
    /// Owned `cache.lock`, removed on drop.
    lock: Option<PathBuf>,
    read_only: bool,
    max_entries: u64,
    max_bytes: u64,
    /// Global recency clock for LRU eviction.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
    /// Bytes currently in the backing file (live + dead lines), used to
    /// decide whether dropping should compact.
    file_bytes: AtomicU64,
}

impl std::fmt::Debug for TileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileCache")
            .field("dir", &self.dir)
            .field("read_only", &self.read_only)
            .field("stats", &self.stats())
            .finish()
    }
}

impl TileCache {
    /// Opens a cache.
    ///
    /// With a directory: creates it, takes `cache.lock` (falling back to
    /// a read-only open with a warning when another live process holds
    /// it), loads every parseable line of `cache.jsonl` (last line per
    /// key wins; a torn tail is skipped) and enforces the budget. Without
    /// a directory the cache is memory-only.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] when the directory or file cannot be
    /// created/read.
    pub fn open(config: &CacheConfig) -> Result<TileCache, RuntimeError> {
        let mut cache = TileCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    cond: Condvar::new(),
                })
                .collect(),
            writer: None,
            dir: None,
            lock: None,
            read_only: config.read_only,
            max_entries: (config.max_entries.max(1)) as u64,
            max_bytes: config.max_bytes.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            file_bytes: AtomicU64::new(0),
        };
        let Some(dir) = &config.dir else {
            return Ok(cache);
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| RuntimeError::Io(format!("create {}: {e}", dir.display())))?;
        if !cache.read_only {
            match acquire_pid_lock(dir, "cache.lock") {
                Ok(path) => cache.lock = Some(path),
                Err(RuntimeError::Locked { path, pid }) => {
                    eprintln!(
                        "cardopc: tile cache {path} is held by live process {pid}; \
                         opening read-only"
                    );
                    cache.read_only = true;
                }
                Err(e) => return Err(e),
            }
        }

        // Load the backing file: last parseable line per key wins, keyed
        // to its line position as the initial recency.
        let path = dir.join("cache.jsonl");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                cache.file_bytes.store(text.len() as u64, Ordering::Relaxed);
                let mut loaded: HashMap<u64, (u64, Arc<CachedTile>, u64)> = HashMap::new();
                for line in text.lines() {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    if let Ok((key, value)) = CachedTile::from_json_line(line) {
                        let tick = cache.tick.fetch_add(1, Ordering::Relaxed);
                        loaded.insert(key, (tick, Arc::new(value), line.len() as u64 + 1));
                    }
                }
                for (key, (tick, value, bytes)) in loaded {
                    let shard = cache.shard(key);
                    shard
                        .map
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(
                            key,
                            Slot::Ready(Entry {
                                value,
                                bytes,
                                last_hit: tick,
                            }),
                        );
                    cache.entries.fetch_add(1, Ordering::Relaxed);
                    cache.bytes.fetch_add(bytes, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(RuntimeError::Io(format!("read {}: {e}", path.display())));
            }
        }

        if !cache.read_only {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| RuntimeError::Io(format!("open {}: {e}", path.display())))?;
            cache.writer = Some(Mutex::new(file));
        }
        cache.dir = Some(dir.clone());
        cache.enforce_budget();
        Ok(cache)
    }

    /// Whether the backing store is write-protected (explicitly, or by
    /// falling back when another process held the lock).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Looks `key` up, correcting-and-inserting on a miss with
    /// single-flight de-duplication: concurrent callers of an in-flight
    /// key block until the leader finishes and then share its value as a
    /// hit. Returns `Ok(None)` when `cancelled` fires while waiting; the
    /// leader itself never waits (it checks nothing beyond `correct`).
    /// A failed leader propagates its error and releases the key, so the
    /// next caller retries.
    ///
    /// # Errors
    ///
    /// Whatever `correct` returns; failures are never cached.
    pub fn get_or_correct<E>(
        &self,
        key: u64,
        cancelled: &(dyn Fn() -> bool + '_),
        correct: impl FnOnce() -> Result<CachedTile, E>,
    ) -> Result<Option<(Arc<CachedTile>, bool)>, E> {
        let shard = self.shard(key);
        let mut map = self.lock_shard(shard);
        loop {
            match map.get_mut(&key) {
                Some(Slot::Ready(entry)) => {
                    entry.last_hit = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some((Arc::clone(&entry.value), true)));
                }
                Some(Slot::InFlight) => {
                    let (guard, _timeout) = shard
                        .cond
                        .wait_timeout(map, WAIT_SLICE)
                        .unwrap_or_else(PoisonError::into_inner);
                    map = guard;
                    if cancelled() {
                        return Ok(None);
                    }
                }
                None => {
                    map.insert(key, Slot::InFlight);
                    drop(map);
                    break;
                }
            }
        }

        // This caller is the leader for `key`.
        match correct() {
            Ok(value) => {
                let value = Arc::new(value);
                let line = value.to_json_line(key);
                let bytes = line.len() as u64 + 1;
                {
                    let mut map = self.lock_shard(shard);
                    map.insert(
                        key,
                        Slot::Ready(Entry {
                            value: Arc::clone(&value),
                            bytes,
                            last_hit: self.tick.fetch_add(1, Ordering::Relaxed),
                        }),
                    );
                }
                shard.cond.notify_all();
                self.entries.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(bytes, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.persist(&line);
                self.enforce_budget();
                Ok(Some((value, false)))
            }
            Err(e) => {
                let mut map = self.lock_shard(shard);
                map.remove(&key);
                drop(map);
                shard.cond.notify_all();
                Err(e)
            }
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key as usize) % SHARDS]
    }

    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, HashMap<u64, Slot>> {
        shard.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Best-effort append of one entry line to the backing file. A write
    /// failure degrades the cache to memory-only behaviour for that
    /// entry; it never fails the correction.
    fn persist(&self, line: &str) {
        if let Some(writer) = &self.writer {
            let mut file = writer.lock().unwrap_or_else(PoisonError::into_inner);
            let ok = file
                .write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.flush());
            match ok {
                Ok(()) => {
                    self.file_bytes
                        .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                }
                Err(e) => {
                    eprintln!("cardopc: tile cache append failed ({e}); entry kept in memory")
                }
            }
        }
    }

    /// Evicts least-recently-hit entries until the store fits its entry
    /// and byte budgets. In-flight keys are never evicted.
    fn enforce_budget(&self) {
        loop {
            if self.entries.load(Ordering::Relaxed) <= self.max_entries
                && self.bytes.load(Ordering::Relaxed) <= self.max_bytes
            {
                return;
            }
            // Global LRU candidate: scan shards one lock at a time.
            let mut victim: Option<(usize, u64, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let map = self.lock_shard(shard);
                for (k, slot) in map.iter() {
                    if let Slot::Ready(entry) = slot {
                        if victim.is_none_or(|(_, _, t)| entry.last_hit < t) {
                            victim = Some((i, *k, entry.last_hit));
                        }
                    }
                }
            }
            let Some((i, key, tick)) = victim else {
                // Nothing evictable (everything in flight).
                return;
            };
            let mut map = self.lock_shard(&self.shards[i]);
            let still_lru = matches!(map.get(&key), Some(Slot::Ready(e)) if e.last_hit == tick);
            if still_lru {
                if let Some(Slot::Ready(entry)) = map.remove(&key) {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A raced hit bumped the candidate; rescan.
        }
    }
}

impl Drop for TileCache {
    fn drop(&mut self) {
        // Compact the backing file when it carries dead weight (evicted
        // or superseded lines). `&mut self` means no other user: plain
        // lock-and-collect is race-free here.
        let dead_weight =
            self.file_bytes.load(Ordering::Relaxed) > self.bytes.load(Ordering::Relaxed);
        if let (Some(dir), true, true) = (&self.dir, self.writer.is_some(), dead_weight) {
            let mut lines: Vec<(u64, String)> = Vec::new();
            for shard in &self.shards {
                let map = shard.map.lock().unwrap_or_else(PoisonError::into_inner);
                for (key, slot) in map.iter() {
                    if let Slot::Ready(entry) = slot {
                        lines.push((entry.last_hit, entry.value.to_json_line(*key)));
                    }
                }
            }
            lines.sort_unstable_by_key(|(tick, _)| *tick);
            let mut text = String::new();
            for (_, line) in &lines {
                text.push_str(line);
                text.push('\n');
            }
            let tmp = dir.join("cache.jsonl.tmp");
            let path = dir.join("cache.jsonl");
            // Best effort: a failed compaction leaves the (valid,
            // merely larger) append-only file in place.
            let _ = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
        }
        if let Some(lock) = self.lock.take() {
            let _ = std::fs::remove_file(lock);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::config_mutations;
    use crate::partition::partition_clip;
    use cardopc_geometry::Polygon;
    use cardopc_layout::Clip;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cardopc-cache-{tag}-{}", std::process::id()))
    }

    fn sample(seed: f64) -> CachedTile {
        CachedTile {
            owned_epe_history: vec![3.0 + seed, 1.5],
            epe_history: vec![6.0, 2.0 + seed],
            shapes: vec![
                CachedShape {
                    target: Some(0),
                    tension: 0.6,
                    control_points: vec![Point::new(1.25 + seed, 2.0), Point::new(3.0, 4.5)],
                },
                CachedShape {
                    target: None,
                    tension: 0.6,
                    control_points: vec![Point::new(0.5, 0.25), Point::new(0.125, 9.0)],
                },
            ],
            metrics: TileMetrics {
                shapes: 2,
                owned: 1,
                epe_sum_nm: 4.25,
                epe_violations: 0,
                pvb_nm2: 512.0,
                mrc_initial: 0,
                mrc_remaining: 0,
            },
            seconds: 0.75,
        }
    }

    #[test]
    fn entry_line_roundtrip_is_exact() {
        let entry = sample(0.0);
        let line = entry.to_json_line(0xfeed_f00d_dead_beef);
        assert!(!line.contains('\n'));
        let (key, back) = CachedTile::from_json_line(&line).unwrap();
        assert_eq!(key, 0xfeed_f00d_dead_beef);
        assert_eq!(back, entry);
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(CachedTile::from_json_line(&line[..cut]).is_err());
        }
    }

    // ------------------------------------------------------ key property

    /// A 3000×2000 clip with two cells' worth of geometry; `shift` moves
    /// everything (content only — the partition grid stays put) by whole
    /// tiles.
    fn keyed_partition(dx: f64, dy: f64) -> crate::partition::Partition {
        let rects = vec![
            Polygon::rect(
                Point::new(100.0 + dx, 120.0 + dy),
                Point::new(300.0 + dx, 190.0 + dy),
            ),
            Polygon::rect(
                Point::new(400.0 + dx, 500.0 + dy),
                Point::new(800.0 + dx, 570.0 + dy),
            ),
        ];
        let clip = Clip::new("key-prop", 3000.0, 3000.0, rects);
        partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 1000.0,
                halo: 100.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn whole_grid_translation_preserves_the_key() {
        let tiling = TilingConfig {
            tile_size: 1000.0,
            halo: 100.0,
        };
        let config = OpcConfig::large_scale();
        let base = keyed_partition(0.0, 0.0);
        let k0 = tile_cache_key(&base.tiles[0], &tiling, &config);
        // Content translated by one and two whole tiles, in x, y and both:
        // the now-congruent tile must produce the identical key.
        for (sx, sy) in [(1.0, 0.0), (0.0, 1.0), (1.0, 1.0), (2.0, 1.0)] {
            let moved = keyed_partition(sx * 1000.0, sy * 1000.0);
            let congruent = &moved.tiles[(sy as usize) * moved.nx + sx as usize];
            assert_eq!(
                k0,
                tile_cache_key(congruent, &tiling, &config),
                "shift ({sx}, {sy}) tiles"
            );
            // And it is genuinely a different tile.
            assert_ne!(congruent.index, base.tiles[0].index);
        }
    }

    #[test]
    fn geometry_and_config_perturbations_change_the_key() {
        let tiling = TilingConfig {
            tile_size: 1000.0,
            halo: 100.0,
        };
        let config = OpcConfig::large_scale();
        let base = keyed_partition(0.0, 0.0);
        let k0 = tile_cache_key(&base.tiles[0], &tiling, &config);

        // Any sub-grid nudge of one rectangle is a different pattern.
        for nudge in [1.0, 0.5, 1e-9] {
            let moved = keyed_partition(nudge, 0.0);
            assert_ne!(
                k0,
                tile_cache_key(&moved.tiles[0], &tiling, &config),
                "nudge {nudge} nm"
            );
        }

        // A different (tile_size, halo) split of the same window size is
        // a different key: 1000+2·100 == 1100+2·50 == 1200 nm windows.
        let alt = TilingConfig {
            tile_size: 1100.0,
            halo: 50.0,
        };
        let clip = Clip::new(
            "key-prop",
            3000.0,
            3000.0,
            vec![Polygon::rect(
                Point::new(100.0, 120.0),
                Point::new(300.0, 190.0),
            )],
        );
        let p_alt = partition_clip(&clip, &alt).unwrap();
        assert_eq!(p_alt.tiles[0].clip.width(), 1200.0);
        assert_eq!(base.tiles[0].clip.width(), 1200.0);
        assert_ne!(
            tile_cache_key(&base.tiles[0], &tiling, &config),
            tile_cache_key(&p_alt.tiles[0], &alt, &config),
        );

        // Every single OpcConfig field mutation invalidates the key.
        for (field, changed) in config_mutations(&config) {
            assert_ne!(
                k0,
                tile_cache_key(&base.tiles[0], &tiling, &changed),
                "mutating {field} must change the cache key"
            );
        }
    }

    #[test]
    fn precision_separates_identical_designs_into_distinct_entries() {
        let tiling = TilingConfig {
            tile_size: 1000.0,
            halo: 100.0,
        };
        let base = keyed_partition(0.0, 0.0);
        let mut f64_config = OpcConfig::large_scale();
        f64_config.precision = cardopc_litho::Precision::F64;
        let mut f32_config = f64_config.clone();
        f32_config.precision = cardopc_litho::Precision::F32;

        // Same design, same tiling, same everything except precision: the
        // keys must differ — an f32 correction replayed into an f64 run
        // (or vice versa) would silently change results.
        let k64 = tile_cache_key(&base.tiles[0], &tiling, &f64_config);
        let k32 = tile_cache_key(&base.tiles[0], &tiling, &f32_config);
        assert_ne!(k64, k32);

        // And through the store: the second precision is a miss, not a
        // replay of the first, and both entries coexist.
        let cache = TileCache::open(&CacheConfig::default()).unwrap();
        let never = || false;
        let (_, hit64) = cache
            .get_or_correct(k64, &never, || ok_sample(1.0))
            .unwrap()
            .unwrap();
        let (_, hit32) = cache
            .get_or_correct(k32, &never, || ok_sample(2.0))
            .unwrap()
            .unwrap();
        assert!(!hit64 && !hit32, "each precision must correct its own tile");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));
    }

    // -------------------------------------------------------- store tests

    fn memory_cache() -> TileCache {
        TileCache::open(&CacheConfig::default()).unwrap()
    }

    fn ok_sample(seed: f64) -> Result<CachedTile, RuntimeError> {
        Ok(sample(seed))
    }

    #[test]
    fn get_or_correct_hits_after_miss() {
        let cache = memory_cache();
        let never = || false;
        let (first, hit) = cache
            .get_or_correct(7, &never, || ok_sample(0.0))
            .unwrap()
            .unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .get_or_correct(7, &never, || -> Result<CachedTile, RuntimeError> {
                panic!("must not correct twice")
            })
            .unwrap()
            .unwrap();
        assert!(hit);
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn failed_leader_releases_the_key() {
        let cache = memory_cache();
        let never = || false;
        let err: Result<Option<_>, RuntimeError> =
            cache.get_or_correct(9, &never, || Err(RuntimeError::InvalidConfig("boom")));
        assert!(err.is_err());
        // The key is free again: the next caller corrects.
        let (_, hit) = cache
            .get_or_correct(9, &never, || ok_sample(1.0))
            .unwrap()
            .unwrap();
        assert!(!hit);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn single_flight_corrects_once_across_threads() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(memory_cache());
        let corrections = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let corrections = Arc::clone(&corrections);
            handles.push(std::thread::spawn(move || {
                let never = || false;
                let (value, _hit) = cache
                    .get_or_correct(42, &never, || {
                        corrections.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(30));
                        ok_sample(0.0)
                    })
                    .unwrap()
                    .unwrap();
                assert_eq!(*value, sample(0.0));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(corrections.load(Ordering::SeqCst), 1, "single flight");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn waiters_observe_cancellation() {
        let cache = Arc::new(memory_cache());
        let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Leader holds the key in flight until released.
        let leader = {
            let cache = Arc::clone(&cache);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                let never = || false;
                cache
                    .get_or_correct(5, &never, || {
                        while !release.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        ok_sample(0.0)
                    })
                    .unwrap();
            })
        };
        // A cancelled waiter gives up with Ok(None) while the leader is
        // still in flight.
        std::thread::sleep(Duration::from_millis(20));
        let cancelled = || true;
        let waited: Option<_> = cache
            .get_or_correct(5, &cancelled, || -> Result<CachedTile, RuntimeError> {
                panic!("waiter must not become leader while in flight")
            })
            .unwrap();
        assert!(waited.is_none());
        release.store(true, Ordering::SeqCst);
        leader.join().unwrap();
    }

    #[test]
    fn eviction_keeps_the_store_within_budget() {
        let cache = TileCache::open(&CacheConfig {
            max_entries: 4,
            ..CacheConfig::default()
        })
        .unwrap();
        let never = || false;
        for key in 0..20u64 {
            cache
                .get_or_correct(key, &never, || ok_sample(key as f64))
                .unwrap();
            // Keep key 0 hot so LRU must spare it.
            cache
                .get_or_correct(0, &never, || -> Result<CachedTile, RuntimeError> {
                    panic!("key 0 must stay resident")
                })
                .unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 4, "entries {} > budget", stats.entries);
        assert_eq!(stats.evicted, 20 - stats.entries);
        assert_eq!(stats.misses, 20);

        // Byte budget alone also bounds the store.
        let line_bytes = sample(0.0).to_json_line(0).len() as u64 + 1;
        let tight = TileCache::open(&CacheConfig {
            max_bytes: 3 * line_bytes,
            ..CacheConfig::default()
        })
        .unwrap();
        for key in 0..10u64 {
            tight
                .get_or_correct(key, &never, || ok_sample(0.0))
                .unwrap();
        }
        let stats = tight.stats();
        assert!(stats.bytes <= 3 * line_bytes);
        assert!(stats.evicted >= 7);
    }

    #[test]
    fn persistence_survives_reopen_and_torn_tail() {
        let dir = tmp("persist");
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let never = || false;
        {
            let cache = TileCache::open(&config).unwrap();
            cache.get_or_correct(1, &never, || ok_sample(1.0)).unwrap();
            cache.get_or_correct(2, &never, || ok_sample(2.0)).unwrap();
        }
        // Simulate a kill mid-append: torn final line.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("cache.jsonl"))
                .unwrap();
            write!(f, "{}", &sample(9.0).to_json_line(3)[..25]).unwrap();
        }
        {
            let cache = TileCache::open(&config).unwrap();
            assert_eq!(cache.stats().entries, 2, "torn tail skipped");
            let (v, hit) = cache
                .get_or_correct(1, &never, || -> Result<CachedTile, RuntimeError> {
                    panic!("persisted entry must hit")
                })
                .unwrap()
                .unwrap();
            assert!(hit);
            assert_eq!(*v, sample(1.0));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_compacts_dead_lines() {
        let dir = tmp("compact");
        let _ = std::fs::remove_dir_all(&dir);
        let config = CacheConfig {
            dir: Some(dir.clone()),
            max_entries: 2,
            ..CacheConfig::default()
        };
        let never = || false;
        {
            let cache = TileCache::open(&config).unwrap();
            for key in 0..6u64 {
                cache
                    .get_or_correct(key, &never, || ok_sample(key as f64))
                    .unwrap();
            }
            assert_eq!(cache.stats().entries, 2);
            // The append-only file still carries all 6 lines.
            let text = std::fs::read_to_string(dir.join("cache.jsonl")).unwrap();
            assert_eq!(text.lines().count(), 6);
        }
        // Dropping compacted the file down to the live entries.
        let text = std::fs::read_to_string(dir.join("cache.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 2);
        let reopened = TileCache::open(&config).unwrap();
        assert_eq!(reopened.stats().entries, 2);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_only_mode_never_writes_but_still_serves() {
        let dir = tmp("readonly");
        let _ = std::fs::remove_dir_all(&dir);
        let rw = CacheConfig {
            dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let never = || false;
        {
            let cache = TileCache::open(&rw).unwrap();
            cache.get_or_correct(1, &never, || ok_sample(1.0)).unwrap();
        }
        let before = std::fs::read_to_string(dir.join("cache.jsonl")).unwrap();
        {
            let cache = TileCache::open(&CacheConfig {
                read_only: true,
                ..rw.clone()
            })
            .unwrap();
            assert!(cache.is_read_only());
            // Persisted entry hits; a new correction stays in memory.
            let (_, hit) = cache
                .get_or_correct(1, &never, || ok_sample(0.0))
                .unwrap()
                .unwrap();
            assert!(hit);
            let (_, hit) = cache
                .get_or_correct(2, &never, || ok_sample(2.0))
                .unwrap()
                .unwrap();
            assert!(!hit);
            let (_, hit) = cache
                .get_or_correct(2, &never, || -> Result<CachedTile, RuntimeError> {
                    panic!("in-memory entry must hit")
                })
                .unwrap()
                .unwrap();
            assert!(hit);
            assert!(!dir.join("cache.lock").exists(), "read-only takes no lock");
        }
        assert_eq!(
            before,
            std::fs::read_to_string(dir.join("cache.jsonl")).unwrap(),
            "read-only must not touch the file"
        );

        // A directory locked by this (live) process degrades to read-only.
        let holder = TileCache::open(&rw).unwrap();
        let fallback = TileCache::open(&rw).unwrap();
        assert!(!holder.is_read_only());
        assert!(fallback.is_read_only());
        drop(fallback);
        drop(holder);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_mode_has_no_directory_side_effects() {
        let cache = memory_cache();
        assert!(!cache.is_read_only());
        let never = || false;
        cache.get_or_correct(1, &never, || ok_sample(0.0)).unwrap();
        assert_eq!(cache.stats().entries, 1);
    }
}
