//! Checkpoint/resume: self-describing JSONL tile records.
//!
//! Each finished tile appends one line to `tiles.jsonl` in the run
//! directory. A record carries everything needed to (a) skip the tile on
//! resume and (b) stitch its output without re-running it: the tile id,
//! an input hash, the owned output shapes' control points (chip
//! coordinates), per-iteration EPE sums and the tile metrics. Floats are
//! serialised as shortest-roundtrip decimals (see [`crate::json`]), so a
//! resumed run reconstructs bit-identical geometry and metrics.
//!
//! Resume safety: a record is only honoured when its `hash` matches the
//! FNV-1a hash of the tile's current input (geometry bits + OPC
//! configuration). A truncated final line — the signature of a killed
//! run — fails to parse and is simply ignored, so the tile re-executes.

use crate::json::Json;
use crate::partition::Tile;
use crate::RuntimeError;
use cardopc_geometry::Point;
use cardopc_opc::{MeasureConvention, OpcConfig};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Record format version.
const RECORD_VERSION: f64 = 1.0;

/// One corrected shape in chip coordinates, ready for stitching.
#[derive(Clone, Debug, PartialEq)]
pub struct StitchedShape {
    /// Index of the target in the source clip (None for SRAFs).
    pub global_id: Option<usize>,
    /// Whether the shape is a sub-resolution assist.
    pub is_sraf: bool,
    /// Cardinal tension of the shape's spline.
    pub tension: f64,
    /// Control points, chip coordinates.
    pub control_points: Vec<Point>,
}

/// Quality/accounting metrics of one tile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TileMetrics {
    /// Targets in the tile's halo window.
    pub shapes: usize,
    /// Targets owned by this tile.
    pub owned: usize,
    /// Sum of |EPE| over the owned targets' measure sites, nm.
    pub epe_sum_nm: f64,
    /// EPE violations (|EPE| > tolerance) over the owned sites.
    pub epe_violations: usize,
    /// PV-band area restricted to the tile core, nm².
    pub pvb_nm2: f64,
    /// MRC violations before resolving (whole halo window).
    pub mrc_initial: usize,
    /// MRC violations left after resolving.
    pub mrc_remaining: usize,
}

/// The checkpoint record of one finished tile.
#[derive(Clone, Debug, PartialEq)]
pub struct TileRecord {
    /// Tile index within the partition.
    pub index: usize,
    /// Tile name (`clip:txxty`).
    pub name: String,
    /// FNV-1a hash of the tile input (geometry + configuration).
    pub input_hash: u64,
    /// Per-iteration sum of |EPE| over the tile's *owned* shapes — the
    /// quantity that aggregates across tiles to the monolithic history.
    pub owned_epe_history: Vec<f64>,
    /// Per-iteration sum of |EPE| over every shape in the halo window
    /// (the tile flow's own convergence signal).
    pub epe_history: Vec<f64>,
    /// Owned output shapes in chip coordinates.
    pub shapes: Vec<StitchedShape>,
    /// Tile metrics.
    pub metrics: TileMetrics,
    /// Wall time spent correcting the tile, seconds.
    pub seconds: f64,
}

// ---------------------------------------------------------------- hashing

/// Canonical bit pattern of an `f64` for hashing: `-0.0` folds onto `0.0`
/// (they compare equal, and geometry that differs only in signed zeros is
/// identical) and every NaN payload folds onto one canonical NaN, so a
/// hash can never distinguish values the geometry itself cannot.
pub(crate) fn canon_f64_bits(v: f64) -> u64 {
    if v == 0.0 {
        0u64 // +0.0; catches -0.0 too, since -0.0 == 0.0
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

/// 64-bit FNV-1a.
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write(&canon_f64_bits(v).to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }
}

/// Hashes a tile's complete input: identity, window geometry, every
/// target's vertices and ownership, and the OPC configuration. Any change
/// to any of these invalidates the tile's checkpoint record.
pub fn tile_input_hash(tile: &Tile, config: &OpcConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_usize(tile.index);
    h.write_usize(tile.tx);
    h.write_usize(tile.ty);
    h.write_f64(tile.origin.x);
    h.write_f64(tile.origin.y);
    h.write_f64(tile.clip.width());
    h.write_f64(tile.clip.height());
    h.write_usize(tile.clip.targets().len());
    for ((target, gid), owned) in tile
        .clip
        .targets()
        .iter()
        .zip(&tile.global_ids)
        .zip(&tile.owned)
    {
        h.write_usize(*gid);
        h.write(&[*owned as u8]);
        h.write_usize(target.len());
        for v in target.vertices() {
            h.write_f64(v.x);
            h.write_f64(v.y);
        }
    }
    hash_config(&mut h, config);
    h.0
}

/// Hashes every `OpcConfig` field. The exhaustive destructuring (no `..`
/// rest patterns anywhere) is deliberate: adding a field to `OpcConfig`,
/// `SrafConfig` or `MrcRules` breaks this function at compile time, so a
/// new knob can never silently be left out of checkpoint/cache keys.
pub(crate) fn hash_config(h: &mut Fnv, c: &OpcConfig) {
    let OpcConfig {
        l_c,
        l_u,
        move_step,
        iterations,
        decay_at,
        decay_factor,
        tension,
        corner_pull,
        smooth_window,
        spline_normals,
        relax_every,
        relax_strength,
        samples_per_segment,
        epe_search,
        pitch,
        dose_delta,
        sraf,
        mrc,
        convention,
        precision,
    } = c;
    h.write_f64(*l_c);
    h.write_f64(*l_u);
    h.write_f64(*move_step);
    h.write_usize(*iterations);
    h.write_usize(*decay_at);
    h.write_f64(*decay_factor);
    h.write_f64(*tension);
    h.write_f64(*corner_pull);
    h.write_usize(*smooth_window);
    h.write(&[*spline_normals as u8]);
    h.write_usize(*relax_every);
    h.write_f64(*relax_strength);
    h.write_usize(*samples_per_segment);
    h.write_f64(*epe_search);
    h.write_f64(*pitch);
    h.write_f64(*dose_delta);
    match sraf {
        None => h.write(&[0]),
        Some(cardopc_opc::SrafConfig {
            length_ratio,
            width,
            distance,
            min_edge,
        }) => {
            h.write(&[1]);
            h.write_f64(*length_ratio);
            h.write_f64(*width);
            h.write_f64(*distance);
            h.write_f64(*min_edge);
        }
    }
    match mrc {
        None => h.write(&[0]),
        Some(cardopc_mrc::MrcRules {
            min_space,
            min_width,
            min_area,
            max_curvature,
        }) => {
            h.write(&[1]);
            h.write_f64(*min_space);
            h.write_f64(*min_width);
            h.write_f64(*min_area);
            h.write_f64(*max_curvature);
        }
    }
    match convention {
        MeasureConvention::ViaEdgeCenters => h.write(&[0]),
        MeasureConvention::MetalSpacing(s) => {
            h.write(&[1]);
            h.write_f64(*s);
        }
    }
    // Simulation precision changes every intensity sample, so f32 and f64
    // runs must never alias in checkpoint or tile-cache keys.
    h.write(&[precision.tag()]);
}

// ---------------------------------------------------------- serialisation

impl TileRecord {
    /// Serialises the record as one compact JSON line (no newline).
    pub fn to_json_line(&self) -> String {
        let shapes = Json::Arr(
            self.shapes
                .iter()
                .map(|s| {
                    let mut cps = Vec::with_capacity(2 * s.control_points.len());
                    for p in &s.control_points {
                        cps.push(p.x);
                        cps.push(p.y);
                    }
                    Json::obj(vec![
                        ("id", s.global_id.map_or(Json::Null, Json::num_usize)),
                        ("sraf", Json::Bool(s.is_sraf)),
                        ("tension", Json::Num(s.tension)),
                        ("cps", Json::num_arr(&cps)),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("v", Json::Num(RECORD_VERSION)),
            ("tile", Json::num_usize(self.index)),
            ("name", Json::Str(self.name.clone())),
            ("hash", Json::Str(format!("{:016x}", self.input_hash))),
            ("owned_epe", Json::num_arr(&self.owned_epe_history)),
            ("epe", Json::num_arr(&self.epe_history)),
            ("metrics", metrics_json(&self.metrics)),
            ("seconds", Json::Num(self.seconds)),
            ("shapes", shapes),
        ])
        .to_string_compact()
    }

    /// Parses one JSONL line back into a record.
    ///
    /// # Errors
    ///
    /// A message describing the malformed field; callers treat any error
    /// as "no record" (the tile re-executes).
    pub fn from_json_line(line: &str) -> Result<TileRecord, String> {
        let v = Json::parse(line)?;
        if v.get("v").and_then(Json::as_f64) != Some(RECORD_VERSION) {
            return Err("unknown record version".into());
        }
        let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field {key}"));
        let index = field("tile")?.as_usize().ok_or("bad tile index")?;
        let name = field("name")?.as_str().ok_or("bad name")?.to_string();
        let input_hash = u64::from_str_radix(field("hash")?.as_str().ok_or("bad hash")?, 16)
            .map_err(|_| "bad hash".to_string())?;
        let floats = |key: &str| -> Result<Vec<f64>, String> {
            field(key)?
                .as_arr()
                .ok_or_else(|| format!("bad array {key}"))?
                .iter()
                .map(|j| j.as_f64().ok_or_else(|| format!("bad number in {key}")))
                .collect()
        };
        let owned_epe_history = floats("owned_epe")?;
        let epe_history = floats("epe")?;
        let metrics = parse_metrics(field("metrics")?)?;
        let seconds = field("seconds")?.as_f64().ok_or("bad seconds")?;
        let mut shapes = Vec::new();
        for s in field("shapes")?.as_arr().ok_or("bad shapes")? {
            let global_id = match s.get("id").ok_or("missing shape id")? {
                Json::Null => None,
                j => Some(j.as_usize().ok_or("bad shape id")?),
            };
            let is_sraf = s.get("sraf").and_then(Json::as_bool).ok_or("bad sraf")?;
            let tension = s
                .get("tension")
                .and_then(Json::as_f64)
                .ok_or("bad tension")?;
            let flat = s.get("cps").and_then(Json::as_arr).ok_or("bad cps")?;
            if flat.len() % 2 != 0 {
                return Err("odd cps length".into());
            }
            let mut control_points = Vec::with_capacity(flat.len() / 2);
            for pair in flat.chunks_exact(2) {
                let x = pair[0].as_f64().ok_or("bad cp")?;
                let y = pair[1].as_f64().ok_or("bad cp")?;
                control_points.push(Point::new(x, y));
            }
            shapes.push(StitchedShape {
                global_id,
                is_sraf,
                tension,
                control_points,
            });
        }
        Ok(TileRecord {
            index,
            name,
            input_hash,
            owned_epe_history,
            epe_history,
            shapes,
            metrics,
            seconds,
        })
    }
}

pub(crate) fn metrics_json(m: &TileMetrics) -> Json {
    Json::obj(vec![
        ("shapes", Json::num_usize(m.shapes)),
        ("owned", Json::num_usize(m.owned)),
        ("epe_sum_nm", Json::Num(m.epe_sum_nm)),
        ("epe_violations", Json::num_usize(m.epe_violations)),
        ("pvb_nm2", Json::Num(m.pvb_nm2)),
        ("mrc_initial", Json::num_usize(m.mrc_initial)),
        ("mrc_remaining", Json::num_usize(m.mrc_remaining)),
    ])
}

pub(crate) fn parse_metrics(v: &Json) -> Result<TileMetrics, String> {
    let us = |key: &str| {
        v.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("bad metric {key}"))
    };
    let fl = |key: &str| {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("bad metric {key}"))
    };
    Ok(TileMetrics {
        shapes: us("shapes")?,
        owned: us("owned")?,
        epe_sum_nm: fl("epe_sum_nm")?,
        epe_violations: us("epe_violations")?,
        pvb_nm2: fl("pvb_nm2")?,
        mrc_initial: us("mrc_initial")?,
        mrc_remaining: us("mrc_remaining")?,
    })
}

// ------------------------------------------------------------- run dir

/// A checkpoint directory: `tiles.jsonl` (appended as tiles finish),
/// `manifest.json` (written on completion), and `run.lock` (held while
/// this process owns the directory).
///
/// The lock prevents two processes — e.g. a `cardopc` CLI invocation and
/// a `cardopc-serve` job — from appending to the same `tiles.jsonl`
/// concurrently, which would interleave torn lines. It is a PID file
/// acquired with an atomic create; a lock left behind by a dead process
/// (the PID no longer runs) is reclaimed with a warning, so crashed runs
/// never wedge their directory. The lock is released when the [`RunDir`]
/// is dropped.
#[derive(Debug)]
pub struct RunDir {
    root: PathBuf,
    /// The lock file owned by this handle, removed on drop.
    lock: Option<PathBuf>,
}

impl RunDir {
    /// Opens (creating if needed) a run directory and acquires its lock.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] when the directory cannot be created, or
    /// [`RuntimeError::Locked`] when another live process holds the lock.
    pub fn open(root: impl Into<PathBuf>) -> Result<RunDir, RuntimeError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| RuntimeError::Io(format!("create {}: {e}", root.display())))?;
        let lock = acquire_lock(&root)?;
        Ok(RunDir {
            root,
            lock: Some(lock),
        })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// The lock file path.
    pub fn lock_path(&self) -> PathBuf {
        self.root.join("run.lock")
    }

    /// The JSONL checkpoint file path.
    pub fn tiles_path(&self) -> PathBuf {
        self.root.join("tiles.jsonl")
    }

    /// The manifest file path.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// The timing-free ("stable") manifest file path. This variant is
    /// byte-identical across reruns, resumes, worker counts and cache
    /// states of the same input, so CI can `cmp` it directly.
    pub fn stable_manifest_path(&self) -> PathBuf {
        self.root.join("manifest.stable.json")
    }

    /// Loads usable checkpoint records: the last parseable record per tile
    /// index. Hash validation against the current partition happens in the
    /// scheduler (it knows the tiles). Missing file → empty map.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] when the file exists but cannot be read.
    pub fn load_records(&self) -> Result<HashMap<usize, TileRecord>, RuntimeError> {
        let path = self.tiles_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
            Err(e) => return Err(RuntimeError::Io(format!("read {}: {e}", path.display()))),
        };
        let mut records = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            // Malformed lines (e.g. the torn final line of a killed run)
            // are skipped: their tiles simply re-execute.
            if let Ok(record) = TileRecord::from_json_line(line) {
                records.insert(record.index, record);
            }
        }
        Ok(records)
    }

    /// Opens the checkpoint file for appending.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] on open failure.
    pub fn append_handle(&self) -> Result<std::fs::File, RuntimeError> {
        let path = self.tiles_path();
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| RuntimeError::Io(format!("open {}: {e}", path.display())))
    }

    /// Appends one record line and flushes it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] on write failure.
    pub fn append_record(
        file: &mut std::fs::File,
        record: &TileRecord,
    ) -> Result<(), RuntimeError> {
        let mut line = record.to_json_line();
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| RuntimeError::Io(format!("append checkpoint: {e}")))
    }

    /// Writes the manifest JSON (atomically via a temp file + rename).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] on write failure.
    pub fn write_manifest(&self, json: &str) -> Result<(), RuntimeError> {
        let tmp = self.root.join("manifest.json.tmp");
        let path = self.manifest_path();
        std::fs::write(&tmp, json)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| RuntimeError::Io(format!("write {}: {e}", path.display())))
    }

    /// Writes the timing-free manifest JSON (atomically, like
    /// [`RunDir::write_manifest`]).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Io`] on write failure.
    pub fn write_stable_manifest(&self, json: &str) -> Result<(), RuntimeError> {
        let tmp = self.root.join("manifest.stable.json.tmp");
        let path = self.stable_manifest_path();
        std::fs::write(&tmp, json)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| RuntimeError::Io(format!("write {}: {e}", path.display())))
    }
}

impl Drop for RunDir {
    fn drop(&mut self) {
        if let Some(lock) = self.lock.take() {
            // Best effort: a failed removal leaves a stale lock that the
            // next opener reclaims (our PID is gone by then).
            let _ = std::fs::remove_file(lock);
        }
    }
}

/// Acquires `root/run.lock` with an atomic create-new, reclaiming locks
/// whose owning PID is no longer alive.
fn acquire_lock(root: &Path) -> Result<PathBuf, RuntimeError> {
    acquire_pid_lock(root, "run.lock")
}

/// Acquires `root/<name>` as a PID lock file with an atomic create-new,
/// reclaiming locks whose owning PID is no longer alive. Shared by the
/// run directory (`run.lock`) and the tile cache (`cache.lock`).
pub(crate) fn acquire_pid_lock(root: &Path, name: &str) -> Result<PathBuf, RuntimeError> {
    let path = root.join(name);
    // Two attempts: acquire, or (reclaim stale then) acquire.
    for attempt in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut file) => {
                // PID written best-effort: an unreadable/empty lock is
                // treated as stale by later openers.
                let _ = writeln!(file, "{}", std::process::id());
                return Ok(path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let owner = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match owner {
                    Some(pid) if pid_alive(pid) => {
                        return Err(RuntimeError::Locked {
                            path: path.display().to_string(),
                            pid,
                        });
                    }
                    _ => {
                        if attempt == 1 {
                            // Lost the reclaim race to another process
                            // that is now live.
                            return Err(RuntimeError::Locked {
                                path: path.display().to_string(),
                                pid: owner.unwrap_or(0),
                            });
                        }
                        eprintln!(
                            "cardopc: reclaiming stale run lock {} (owner {} is gone)",
                            path.display(),
                            owner.map_or_else(|| "<unreadable>".into(), |p| p.to_string()),
                        );
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
            Err(e) => {
                return Err(RuntimeError::Io(format!("lock {}: {e}", path.display())));
            }
        }
    }
    unreachable!("lock acquisition loop returns on every branch")
}

/// Whether a PID refers to a live process. The runtime's own PID is
/// always live; other PIDs are probed via `/proc` where available and
/// conservatively assumed live elsewhere (a false "live" merely refuses
/// the lock, never corrupts the checkpoint file).
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Every single-field mutation of a base `OpcConfig`, labelled, for
/// hash/cache-key invalidation sweeps. One entry per field (plus the
/// `Some`/`None` flips of the optional groups), so a future field that is
/// added to `hash_config` (the compiler forces that much) should also be
/// added here to get invalidation coverage.
#[cfg(test)]
pub(crate) fn config_mutations(base: &OpcConfig) -> Vec<(&'static str, OpcConfig)> {
    let mut out: Vec<(&'static str, OpcConfig)> = Vec::new();
    {
        let mut push = |name: &'static str, f: &dyn Fn(&mut OpcConfig)| {
            let mut c = base.clone();
            f(&mut c);
            out.push((name, c));
        };
        push("l_c", &|c| c.l_c += 1.0);
        push("l_u", &|c| c.l_u += 1.0);
        push("move_step", &|c| c.move_step += 0.5);
        push("iterations", &|c| c.iterations += 1);
        push("decay_at", &|c| c.decay_at += 1);
        push("decay_factor", &|c| c.decay_factor *= 0.5);
        push("tension", &|c| c.tension += 0.05);
        push("corner_pull", &|c| c.corner_pull += 0.1);
        push("smooth_window", &|c| c.smooth_window += 1);
        push("spline_normals", &|c| c.spline_normals = !c.spline_normals);
        push("relax_every", &|c| c.relax_every += 1);
        push("relax_strength", &|c| c.relax_strength += 0.01);
        push("samples_per_segment", &|c| c.samples_per_segment += 1);
        push("epe_search", &|c| c.epe_search += 1.0);
        push("pitch", &|c| c.pitch *= 2.0);
        push("dose_delta", &|c| c.dose_delta += 0.01);
        push("sraf presence", &|c| {
            c.sraf = match c.sraf {
                None => Some(cardopc_opc::SrafConfig::default()),
                Some(_) => None,
            }
        });
        push("mrc presence", &|c| {
            c.mrc = match c.mrc {
                None => Some(cardopc_mrc::MrcRules::default()),
                Some(_) => None,
            }
        });
        push("convention kind", &|c| {
            c.convention = match c.convention {
                MeasureConvention::ViaEdgeCenters => MeasureConvention::MetalSpacing(60.0),
                MeasureConvention::MetalSpacing(_) => MeasureConvention::ViaEdgeCenters,
            }
        });
        push("convention spacing", &|c| {
            c.convention = match c.convention {
                MeasureConvention::MetalSpacing(s) => MeasureConvention::MetalSpacing(s + 1.0),
                MeasureConvention::ViaEdgeCenters => MeasureConvention::MetalSpacing(1.0),
            }
        });
        push("precision", &|c| {
            c.precision = match c.precision {
                cardopc_litho::Precision::F64 => cardopc_litho::Precision::F32,
                cardopc_litho::Precision::F32 => cardopc_litho::Precision::F64,
            }
        });
    }
    {
        let with_sraf = {
            let mut c = base.clone();
            c.sraf.get_or_insert_with(cardopc_opc::SrafConfig::default);
            c
        };
        let mut push_sraf = |name: &'static str, f: &dyn Fn(&mut cardopc_opc::SrafConfig)| {
            let mut c = with_sraf.clone();
            f(c.sraf.as_mut().unwrap());
            out.push((name, c));
        };
        push_sraf("sraf.length_ratio", &|s| s.length_ratio += 0.1);
        push_sraf("sraf.width", &|s| s.width += 1.0);
        push_sraf("sraf.distance", &|s| s.distance += 1.0);
        push_sraf("sraf.min_edge", &|s| s.min_edge += 1.0);
    }
    {
        let with_mrc = {
            let mut c = base.clone();
            c.mrc.get_or_insert_with(cardopc_mrc::MrcRules::default);
            c
        };
        let mut push_mrc = |name: &'static str, f: &dyn Fn(&mut cardopc_mrc::MrcRules)| {
            let mut c = with_mrc.clone();
            f(c.mrc.as_mut().unwrap());
            out.push((name, c));
        };
        push_mrc("mrc.min_space", &|r| r.min_space += 1.0);
        push_mrc("mrc.min_width", &|r| r.min_width += 1.0);
        push_mrc("mrc.min_area", &|r| r.min_area += 1.0);
        push_mrc("mrc.max_curvature", &|r| r.max_curvature *= 2.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TileRecord {
        TileRecord {
            index: 3,
            name: "gcd[0]:1x0".into(),
            input_hash: 0xdead_beef_cafe_f00d,
            owned_epe_history: vec![10.5, 7.25, 0.1 + 0.2],
            epe_history: vec![20.0, 14.5, 1.0 / 3.0],
            shapes: vec![
                StitchedShape {
                    global_id: Some(42),
                    is_sraf: false,
                    tension: 0.6,
                    control_points: vec![Point::new(1.5, -2.25), Point::new(1e-12, 3.0)],
                },
                StitchedShape {
                    global_id: None,
                    is_sraf: true,
                    tension: 0.6,
                    control_points: vec![Point::new(0.1, 0.2), Point::new(0.3, 0.4)],
                },
            ],
            metrics: TileMetrics {
                shapes: 12,
                owned: 7,
                epe_sum_nm: 33.75,
                epe_violations: 2,
                pvb_nm2: 1234.0,
                mrc_initial: 1,
                mrc_remaining: 0,
            },
            seconds: 1.75,
        }
    }

    #[test]
    fn f64_hashing_canonicalises_signed_zero_and_nan() {
        // -0.0 and +0.0 are the same geometry; their hashes must agree.
        assert_eq!(canon_f64_bits(0.0), canon_f64_bits(-0.0));
        let hash_one = |v: f64| {
            let mut h = Fnv::new();
            h.write_f64(v);
            h.0
        };
        assert_eq!(hash_one(0.0), hash_one(-0.0));
        assert_ne!(hash_one(0.0), hash_one(f64::MIN_POSITIVE));
        // Every NaN payload folds onto one canonical NaN.
        let quiet = f64::NAN;
        let payload = f64::from_bits(f64::NAN.to_bits() | 0xdead);
        assert!(payload.is_nan());
        assert_eq!(hash_one(quiet), hash_one(payload));
        assert_eq!(hash_one(quiet), hash_one(-quiet));
        // Ordinary values still hash by exact bits: 1-ulp neighbours differ.
        let x = 1.0f64;
        assert_ne!(hash_one(x), hash_one(f64::from_bits(x.to_bits() + 1)));
    }

    #[test]
    fn record_roundtrip_is_exact() {
        let r = record();
        let line = r.to_json_line();
        assert!(!line.contains('\n'));
        let back = TileRecord::from_json_line(&line).unwrap();
        assert_eq!(back, r);
        // Bit-exactness of the awkward floats.
        assert_eq!(
            back.owned_epe_history[2].to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn truncated_line_rejected() {
        let line = record().to_json_line();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert!(TileRecord::from_json_line(&line[..cut]).is_err());
        }
    }

    #[test]
    fn run_dir_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("cardopc-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = RunDir::open(&dir).unwrap();
        assert!(run.load_records().unwrap().is_empty());

        let mut file = run.append_handle().unwrap();
        let a = record();
        let mut b = record();
        b.index = 5;
        RunDir::append_record(&mut file, &a).unwrap();
        RunDir::append_record(&mut file, &b).unwrap();
        // Simulate a kill mid-append: a torn, unparseable final line.
        {
            use std::io::Write;
            let mut f = run.append_handle().unwrap();
            write!(f, "{}", &record().to_json_line()[..40]).unwrap();
        }
        let records = run.load_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[&3], a);
        assert_eq!(records[&5], b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_dir_lock_excludes_second_opener() {
        let dir = std::env::temp_dir().join(format!("cardopc-lock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = RunDir::open(&dir).unwrap();
        assert!(run.lock_path().exists());

        // A second opener in the same (live) process is refused.
        match RunDir::open(&dir) {
            Err(RuntimeError::Locked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }

        // Dropping the handle releases the lock.
        drop(run);
        let reopened = RunDir::open(&dir).expect("lock must be released on drop");
        drop(reopened);
        assert!(!dir.join("run.lock").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_and_unreadable_locks_are_reclaimed() {
        let dir = std::env::temp_dir().join(format!("cardopc-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A lock held by a long-dead PID (Linux pid_max < 2^22) is stale.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("run.lock"), "999999999\n").unwrap();
        let run = RunDir::open(&dir).expect("stale lock must be reclaimed");
        drop(run);

        // An unreadable lock (no PID) is treated as stale too.
        std::fs::write(dir.join("run.lock"), "not a pid").unwrap();
        let run = RunDir::open(&dir).expect("unreadable lock must be reclaimed");
        drop(run);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_changes_invalidate_hash() {
        use crate::partition::{partition_clip, TilingConfig};
        use cardopc_geometry::Polygon;
        use cardopc_layout::Clip;

        let clip = Clip::new(
            "h",
            500.0,
            500.0,
            vec![Polygon::rect(
                Point::new(100.0, 100.0),
                Point::new(200.0, 170.0),
            )],
        );
        let p = partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 500.0,
                halo: 0.0,
            },
        )
        .unwrap();
        let base = OpcConfig::large_scale();
        let h0 = tile_input_hash(&p.tiles[0], &base);
        assert_eq!(h0, tile_input_hash(&p.tiles[0], &base), "deterministic");
        // Every single-field mutation of the configuration must change
        // the hash (guards future fields via the exhaustive helper).
        for (field, changed) in config_mutations(&base) {
            assert_ne!(
                h0,
                tile_input_hash(&p.tiles[0], &changed),
                "mutating {field} must invalidate the hash"
            );
        }
        // Geometry change checked via a shifted clip:
        let clip2 = Clip::new(
            "h",
            500.0,
            500.0,
            vec![Polygon::rect(
                Point::new(101.0, 100.0),
                Point::new(201.0, 170.0),
            )],
        );
        let p2 = partition_clip(
            &clip2,
            &TilingConfig {
                tile_size: 500.0,
                halo: 0.0,
            },
        )
        .unwrap();
        assert_ne!(h0, tile_input_hash(&p2.tiles[0], &base));
    }
}
