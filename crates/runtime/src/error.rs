//! Error type for the tiled runtime.

use cardopc_litho::LithoError;
use cardopc_opc::OpcError;
use std::error::Error;
use std::fmt;

/// Errors returned by the tiled full-chip runtime.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A tile's OPC flow failed; carries the tile index.
    Tile {
        /// Tile index within the partition.
        tile: usize,
        /// The underlying flow error.
        source: OpcError,
    },
    /// The lithography layer rejected a configuration.
    Litho(LithoError),
    /// A checkpoint/manifest file operation failed.
    Io(String),
    /// A runtime configuration value is unusable.
    InvalidConfig(&'static str),
    /// The run directory is locked by another live process (e.g. a CLI
    /// run and a serve job pointed at the same `--run-dir`).
    Locked {
        /// The lock file path.
        path: String,
        /// PID of the live owner (0 when the lock file was unreadable).
        pid: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Tile { tile, source } => write!(f, "tile {tile} failed: {source}"),
            RuntimeError::Litho(e) => write!(f, "lithography error: {e}"),
            RuntimeError::Io(msg) => write!(f, "run directory i/o failed: {msg}"),
            RuntimeError::InvalidConfig(what) => write!(f, "invalid runtime config: {what}"),
            RuntimeError::Locked { path, pid } => {
                write!(f, "run directory locked by live process {pid} ({path})")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Tile { source, .. } => Some(source),
            RuntimeError::Litho(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LithoError> for RuntimeError {
    fn from(e: LithoError) -> Self {
        RuntimeError::Litho(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::Tile {
            tile: 7,
            source: OpcError::EmptyClip,
        };
        assert!(e.to_string().contains("tile 7"));
        assert!(e.source().is_some());
        assert!(RuntimeError::Io("nope".into()).source().is_none());
        assert!(RuntimeError::InvalidConfig("halo")
            .to_string()
            .contains("halo"));
    }
}
