//! Exporting a stitched full-chip mask as a GDSII stream.
//!
//! The corrected mask is curvilinear: every shape is a closed cardinal
//! spline. GDS BOUNDARY records only hold polygons, so each spline is
//! sampled at the OPC flow's `samples_per_segment` density and written at
//! a 0.01 nm/dbu grid — two orders finer than the 1 nm/dbu target-layout
//! grid, so the sub-nanometre contour moves the optimiser converged on
//! survive the round trip. Mains and SRAFs go to separate layers
//! (foundry convention), both configurable.
//!
//! The writer is deterministic: same stitched mask → same bytes,
//! regardless of worker count, cache hits, or resume history — the
//! stitcher already orders shapes canonically (mains by source-clip
//! index, SRAFs in tile order) and [`cardopc_gds::GdsWriter`] emits
//! fixed timestamps.

use crate::stitch::Stitched;
use cardopc_gds::{GdsError, GdsWriter};
use cardopc_spline::CardinalSpline;

/// Database grid of exported masks, nm per database unit. 0.01 nm keeps
/// sub-nanometre spline geometry intact while staying far inside the
/// i32 coordinate range for chip-scale masks (±21 mm).
pub const MASK_NM_PER_DBU: f64 = 0.01;

/// Default layer for corrected main shapes.
pub const DEFAULT_MASK_LAYER: i16 = 2;

/// Default layer for sub-resolution assist features.
pub const DEFAULT_SRAF_LAYER: i16 = 3;

/// Options for [`write_mask_gds`].
#[derive(Clone, Copy, Debug)]
pub struct MaskGdsOptions {
    /// Layer receiving corrected mains (datatype 0).
    pub mask_layer: i16,
    /// Layer receiving SRAFs (datatype 0).
    pub sraf_layer: i16,
    /// Spline samples per segment; the OPC config's
    /// `samples_per_segment` keeps the export consistent with what the
    /// simulation saw.
    pub samples_per_segment: usize,
}

impl Default for MaskGdsOptions {
    fn default() -> MaskGdsOptions {
        MaskGdsOptions {
            mask_layer: DEFAULT_MASK_LAYER,
            sraf_layer: DEFAULT_SRAF_LAYER,
            samples_per_segment: 8,
        }
    }
}

/// Serialises a stitched mask to GDSII bytes: one structure named
/// `name`, mains on `mask_layer:0`, SRAFs on `sraf_layer:0`, all
/// coordinates on the 0.01 nm mask grid.
///
/// # Errors
///
/// [`GdsError`] when a sampled contour cannot be encoded (coordinate
/// overflow past ±21 mm) or the structure name is not printable ASCII.
pub fn write_mask_gds(
    stitched: &Stitched,
    name: &str,
    options: &MaskGdsOptions,
) -> Result<Vec<u8>, GdsError> {
    let per_segment = options.samples_per_segment.max(1);
    let mut w = GdsWriter::new("CARDOPC_MASK", MASK_NM_PER_DBU)?;
    w.begin_struct(name);
    for (shapes, layer) in [
        (&stitched.mains, options.mask_layer),
        (&stitched.srafs, options.sraf_layer),
    ] {
        for shape in shapes.iter() {
            // Control points were valid splines when checkpointed; a
            // failure here means a corrupted record, and silently
            // dropping mask geometry is never acceptable.
            let spline = CardinalSpline::closed(shape.control_points.clone(), shape.tension)
                .map_err(|e| GdsError::Io(format!("stitched shape is not a spline: {e}")))?;
            w.boundary(layer, 0, &spline.to_polygon(per_segment))?;
        }
    }
    w.end_struct();
    Ok(w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::StitchedShape;
    use cardopc_gds::{flatten, FlattenLimits, LayerFilter};
    use cardopc_geometry::Point;

    fn square_shape(x0: f64, y0: f64, size: f64, is_sraf: bool) -> StitchedShape {
        StitchedShape {
            global_id: (!is_sraf).then_some(0),
            is_sraf,
            tension: 0.0,
            control_points: vec![
                Point::new(x0, y0),
                Point::new(x0 + size, y0),
                Point::new(x0 + size, y0 + size),
                Point::new(x0, y0 + size),
            ],
        }
    }

    fn sample_mask() -> Stitched {
        Stitched {
            mains: vec![square_shape(100.0, 100.0, 60.0, false)],
            srafs: vec![square_shape(200.25, 100.5, 20.0, true)],
            seam_violations: Vec::new(),
        }
    }

    #[test]
    fn mask_layers_split_mains_and_srafs() {
        let bytes = write_mask_gds(&sample_mask(), "MASK", &MaskGdsOptions::default()).unwrap();
        let lib = cardopc_gds::parse_lib(&bytes).unwrap();
        assert_eq!(lib.nm_per_dbu(), MASK_NM_PER_DBU);
        let mains = flatten(
            &lib,
            "MASK",
            LayerFilter::Layer(DEFAULT_MASK_LAYER),
            FlattenLimits::default(),
        )
        .unwrap();
        let srafs = flatten(
            &lib,
            "MASK",
            LayerFilter::Layer(DEFAULT_SRAF_LAYER),
            FlattenLimits::default(),
        )
        .unwrap();
        assert_eq!((mains.len(), srafs.len()), (1, 1));
        // Tension-0 splines through square control points bulge outward;
        // the sampled contour must stay curvilinear (more vertices than
        // the 4 control points) and centred where the shape was.
        assert!(mains[0].polygon.len() >= 16);
        let c = mains[0].polygon.centroid();
        assert!((c.x - 130.0).abs() < 1.0 && (c.y - 130.0).abs() < 1.0);
    }

    #[test]
    fn sub_nanometre_geometry_survives_the_grid() {
        let bytes = write_mask_gds(&sample_mask(), "MASK", &MaskGdsOptions::default()).unwrap();
        let lib = cardopc_gds::parse_lib(&bytes).unwrap();
        let srafs = flatten(
            &lib,
            "MASK",
            LayerFilter::Layer(DEFAULT_SRAF_LAYER),
            FlattenLimits::default(),
        )
        .unwrap();
        // Every re-read vertex lies on the 0.01 nm mask grid, and the
        // curvilinear contour actually uses it: a 1 nm/dbu export would
        // flatten these sub-nanometre coordinates away.
        let vertices = srafs[0].polygon.vertices();
        let mut off_nm_grid = 0;
        for v in vertices {
            for c in [v.x, v.y] {
                assert!((c * 100.0 - (c * 100.0).round()).abs() < 1e-6, "{c}");
                if (c - c.round()).abs() > 1e-3 {
                    off_nm_grid += 1;
                }
            }
        }
        assert!(off_nm_grid > 0, "contour collapsed to the integer grid");
    }

    #[test]
    fn export_is_deterministic() {
        let mask = sample_mask();
        let options = MaskGdsOptions::default();
        let a = write_mask_gds(&mask, "MASK", &options).unwrap();
        let b = write_mask_gds(&mask, "MASK", &options).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_control_points_error_instead_of_dropping_shapes() {
        let mut mask = sample_mask();
        mask.mains[0].control_points.truncate(2); // not a closed spline
        let err = write_mask_gds(&mask, "MASK", &MaskGdsOptions::default()).unwrap_err();
        assert!(err.to_string().contains("not a spline"), "{err}");
    }
}
