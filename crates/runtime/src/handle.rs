//! Library-level run control: progress observation, cooperative
//! cancellation, and cross-run litho engine sharing.
//!
//! The PR-3 runtime buried "watch a run" and "stop a run" in the
//! `cardopc` binary (stdout logging, Ctrl-C killing the process and
//! relying on checkpoint resume). Long-lived embedders — the
//! `cardopc-serve` correction service foremost — need those as library
//! concepts instead:
//!
//! * [`RunControl`] bundles the optional hooks a caller can attach to
//!   [`run_clip_controlled`](crate::run_clip_controlled) /
//!   [`run_tiles_controlled`](crate::schedule::run_tiles_controlled).
//! * [`RunHandle`] is a cheaply clonable cancellation token. Cancellation
//!   is cooperative and checked at **tile boundaries**: tiles already in
//!   flight finish (and are checkpointed), no new tiles are claimed, and
//!   the run returns an incomplete-but-resumable outcome.
//! * [`TileEvent`] is emitted once per finished tile (resumed or
//!   executed), mirroring the checkpoint record stream 1:1 — a progress
//!   observer sees exactly what `tiles.jsonl` receives.
//! * [`EngineCache`] lets *different* runs share calibrated
//!   [`LithoEngine`]s. Engines are immutable after calibration (every
//!   litho entry point takes `&self`), so sharing cannot perturb results:
//!   a tile corrected against a cached engine is bit-identical to one
//!   corrected against a freshly built engine of the same extent.

use crate::cache::TileCache;
use cardopc_litho::LithoEngine;
use cardopc_opc::OpcError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Engine identity: `(width nm bits, height nm bits, pitch nm bits,
/// precision tag)` of the window the engine was calibrated for. The
/// precision tag ([`cardopc_litho::Precision::tag`]) keeps `f32` and `f64`
/// engines from ever aliasing in the cache.
pub type EngineKey = (u64, u64, u64, u8);

/// One progress event: a tile finished (executed or resumed).
#[derive(Clone, Debug, PartialEq)]
pub struct TileEvent {
    /// Tile index within the partition.
    pub tile: usize,
    /// Tile name (`clip:txxty`).
    pub name: String,
    /// `true` when the tile was reused from a checkpoint record.
    pub resumed: bool,
    /// `true` when the tile was replayed from the content-addressed tile
    /// cache instead of being corrected.
    pub cached: bool,
    /// Wall seconds spent correcting the tile (the checkpointed value for
    /// resumed tiles; the replay cost for cached ones).
    pub seconds: f64,
    /// Tiles finished so far, including this one.
    pub completed: usize,
    /// Total tiles in the partition.
    pub total: usize,
}

/// A cooperative cancellation token, checked at tile boundaries.
///
/// Clones share the same flag; any clone can cancel. Cancelling an
/// already-finished run is a no-op.
#[derive(Clone, Debug, Default)]
pub struct RunHandle {
    cancelled: Arc<AtomicBool>,
}

impl RunHandle {
    /// A fresh, not-yet-cancelled handle.
    pub fn new() -> RunHandle {
        RunHandle::default()
    }

    /// Requests cancellation: the run stops claiming tiles, finishes (and
    /// checkpoints) the tiles already in flight, and returns incomplete.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A calibrated-engine cache shared across runs.
///
/// The scheduler keys engines per pool *slot* so that, within one run,
/// each executor finds its engine without touching a lock on the hot
/// path; the cache preserves that sharding (one mutexed map per slot) so
/// a server running jobs back to back — or two jobs concurrently — reuses
/// kernels instead of re-deriving them per job. Engines are handed out as
/// [`Arc`]s and never mutated, so sharing is invisible to results.
#[derive(Debug)]
pub struct EngineCache {
    slots: Vec<Mutex<HashMap<EngineKey, Arc<LithoEngine>>>>,
}

impl EngineCache {
    /// A cache with `slots` independent shards (use the worker pool's
    /// parallelism; a smaller count still works — slots wrap around).
    pub fn new(slots: usize) -> EngineCache {
        EngineCache {
            slots: (0..slots.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total engines currently cached across all shards.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Whether no engine is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the engine for `key` in shard `slot`, building (and
    /// caching) it with `build` on a miss.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; failures are not cached.
    pub fn get_or_build(
        &self,
        slot: usize,
        key: EngineKey,
        build: impl FnOnce() -> Result<LithoEngine, OpcError>,
    ) -> Result<Arc<LithoEngine>, OpcError> {
        let shard = &self.slots[slot % self.slots.len()];
        // Fast path: already built.
        if let Some(engine) = self.lock(shard).get(&key) {
            return Ok(Arc::clone(engine));
        }
        // Build outside the lock (kernel derivation is the expensive
        // part); a concurrent builder of the same key may win the insert,
        // in which case its engine is kept and ours dropped — both are
        // deterministic functions of `key`, so either is correct.
        let engine = Arc::new(build()?);
        let mut map = self.lock(shard);
        Ok(Arc::clone(map.entry(key).or_insert(engine)))
    }

    fn lock<'a>(
        &self,
        shard: &'a Mutex<HashMap<EngineKey, Arc<LithoEngine>>>,
    ) -> std::sync::MutexGuard<'a, HashMap<EngineKey, Arc<LithoEngine>>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Optional hooks threaded through a controlled run.
///
/// The default value reproduces the PR-3 behaviour exactly: no progress
/// reporting, no cancellation, run-local engines.
#[derive(Clone, Copy, Default)]
pub struct RunControl<'a> {
    /// Called once per finished tile (resumed tiles first, then executed
    /// tiles as they complete). Invoked from scheduler threads — keep it
    /// cheap and non-blocking.
    pub progress: Option<&'a (dyn Fn(&TileEvent) + Sync)>,
    /// Cooperative cancellation token.
    pub handle: Option<&'a RunHandle>,
    /// Shared engine cache; `None` builds engines run-locally (and drops
    /// them when the run ends).
    pub engines: Option<&'a EngineCache>,
    /// Content-addressed tile correction cache (see [`crate::cache`]);
    /// `None` corrects every tile.
    pub cache: Option<&'a TileCache>,
}

impl std::fmt::Debug for RunControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("progress", &self.progress.is_some())
            .field("handle", &self.handle.is_some())
            .field("engines", &self.engines.is_some())
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

impl RunControl<'_> {
    /// Whether the attached handle (if any) has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.handle.is_some_and(RunHandle::is_cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_clones_share_the_flag() {
        let h = RunHandle::new();
        let clone = h.clone();
        assert!(!h.is_cancelled());
        clone.cancel();
        assert!(h.is_cancelled());
        assert!(RunControl {
            handle: Some(&h),
            ..RunControl::default()
        }
        .cancelled());
        assert!(!RunControl::default().cancelled());
    }

    #[test]
    fn engine_cache_builds_once_per_slot_and_key() {
        let cache = EngineCache::new(2);
        let mut builds = 0;
        let key = (1024f64.to_bits(), 1024f64.to_bits(), 16f64.to_bits(), 0u8);
        for _ in 0..3 {
            let engine = cache
                .get_or_build(0, key, || {
                    builds += 1;
                    cardopc_opc::engine_for_extent(1024.0, 1024.0, 16.0)
                })
                .unwrap();
            assert_eq!(engine.width(), 64);
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.len(), 1);
        // A different slot is an independent shard.
        cache
            .get_or_build(1, key, || {
                cardopc_opc::engine_for_extent(1024.0, 1024.0, 16.0)
            })
            .unwrap();
        assert_eq!(cache.len(), 2);
        // Slot indices wrap.
        cache
            .get_or_build(2, key, || panic!("slot 2 wraps onto slot 0's shard"))
            .unwrap();
        assert!(!cache.is_empty());
    }

    #[test]
    fn engine_cache_build_failures_are_not_cached() {
        let cache = EngineCache::new(1);
        let key = (1.0f64.to_bits(), 1.0f64.to_bits(), 1.0f64.to_bits(), 0u8);
        let err = cache.get_or_build(0, key, || cardopc_opc::engine_for_extent(1e9, 1e9, 1.0));
        assert!(err.is_err());
        assert!(cache.is_empty());
    }
}
