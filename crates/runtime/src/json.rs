//! Re-export of the shared [`cardopc_json`] crate.
//!
//! The JSON machinery started life in this module and was promoted to its
//! own crate so `cardopc-serve` can speak the same wire format without
//! copying it; `cardopc_runtime::json::Json` keeps working unchanged.

pub use cardopc_json::Json;
