//! `cardopc-runtime` — a tiled full-chip OPC runtime.
//!
//! [`CardOpc`](cardopc_opc::CardOpc) corrects one clip against one
//! simulation grid; full-chip layouts are far larger than the maximum
//! grid. This crate scales the flow out by tiling:
//!
//! 1. **Partition** ([`partition_clip`]): the clip is split into core
//!    windows with a halo margin; every target is owned by exactly one
//!    tile (bbox-centre rule over an R-tree), and halo copies give each
//!    tile the optical context a monolithic run would see.
//! 2. **Schedule** ([`run_tiles`]): tiles fan out over the shared
//!    [`WorkerPool`], each slot holding its own calibrated
//!    [`LithoEngine`](cardopc_litho::LithoEngine) keyed by the (uniform)
//!    window extent. Results are merged in tile order, so the outcome is
//!    deterministic for any scheduler pool size.
//! 3. **Checkpoint** ([`RunDir`]): finished tiles append self-describing
//!    JSONL records (input hash, control points, metrics); a resumed run
//!    skips every tile whose record still matches its input hash.
//! 4. **Stitch** ([`stitch`]): owner-tile shapes are merged into the
//!    full-chip mask and a cross-boundary MRC spacing pass runs on the
//!    seam bands only.
//! 5. **Manifest** ([`RunManifest`]): per-tile and aggregate statistics,
//!    renderable as a table or JSON; the timing-free JSON form is
//!    byte-identical across reruns and resumes of the same input.
//! 6. **Control** ([`RunControl`]): long-lived embedders attach per-tile
//!    progress callbacks, a cooperative [`RunHandle`] cancellation token
//!    (checked at tile boundaries, so cancelled runs stay resumable), and
//!    a cross-run [`EngineCache`] via [`run_clip_controlled`].
//! 7. **Tile cache** ([`TileCache`]): a persistent content-addressed
//!    store keyed by a translation-normalised tile pattern hash; a
//!    congruent tile anywhere on the chip — or in a later job — replays
//!    the stored window-relative correction instead of re-running it, so
//!    cost collapses from total tiles to *unique* tile patterns.
//!
//! The `cardopc` binary (in the `cardopc-serve` crate) wraps this into a
//! command-line runner and an HTTP correction service.

pub mod cache;
pub mod checkpoint;
mod error;
pub mod gdsout;
pub mod handle;
pub mod json;
pub mod manifest;
pub mod partition;
pub mod schedule;
pub mod stitch;

pub use cache::{tile_cache_key, CacheConfig, CacheStats, CachedShape, CachedTile, TileCache};
pub use checkpoint::{tile_input_hash, RunDir, StitchedShape, TileMetrics, TileRecord};
pub use error::RuntimeError;
pub use gdsout::{write_mask_gds, MaskGdsOptions, MASK_NM_PER_DBU};
pub use handle::{EngineCache, RunControl, RunHandle, TileEvent};
pub use manifest::{Aggregate, RunManifest, TileSummary};
pub use partition::{partition_clip, Partition, Tile, TilingConfig};
pub use schedule::{
    correct_single_tile, run_tiles, run_tiles_controlled, ScheduleOutcome, TileResult,
};
pub use stitch::{seam_bands, stitch, StitchAccumulator, Stitched};

use cardopc_layout::Clip;
use cardopc_litho::WorkerPool;
use cardopc_opc::{CardOpc, OpcConfig};
use std::path::PathBuf;

/// Configuration of one tiled run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The per-tile OPC flow configuration.
    pub opc: OpcConfig,
    /// Tiling geometry.
    pub tiling: TilingConfig,
    /// Checkpoint/manifest directory. `None` disables checkpointing.
    /// When the directory already holds records from a previous run over
    /// the same input, those tiles are resumed instead of re-executed.
    pub run_dir: Option<PathBuf>,
    /// Execute at most this many tiles, then stop (resumed tiles are
    /// free). `None` runs to completion.
    pub max_tiles: Option<usize>,
}

impl RunConfig {
    /// A run configuration with no checkpointing and no tile budget.
    pub fn new(opc: OpcConfig, tiling: TilingConfig) -> RunConfig {
        RunConfig {
            opc,
            tiling,
            run_dir: None,
            max_tiles: None,
        }
    }
}

/// Result of [`run_clip`].
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The run manifest (written to `run_dir/manifest.json` when the run
    /// completed and a run directory was configured).
    pub manifest: RunManifest,
    /// The stitched full-chip mask; `None` when the tile budget left the
    /// run incomplete.
    pub stitched: Option<Stitched>,
    /// Per-tile results, sorted by tile index.
    pub results: Vec<TileResult>,
    /// `true` when every tile of the partition completed.
    pub complete: bool,
    /// `true` when the run stopped early because its [`RunHandle`] was
    /// cancelled (the checkpointed tiles make it resumable).
    pub cancelled: bool,
}

/// Runs the tiled flow end to end: partition → (resume) → schedule →
/// stitch → manifest.
///
/// # Errors
///
/// [`RuntimeError::InvalidConfig`] for unusable tiling parameters,
/// [`RuntimeError::Tile`] when a tile's flow fails, [`RuntimeError::Io`]
/// on checkpoint/manifest file failures.
///
/// # Panics
///
/// Panics when `config.opc` is invalid (see
/// [`OpcConfig::assert_valid`](cardopc_opc::OpcConfig)); the OPC
/// configuration is build-time data, not user input.
pub fn run_clip(
    clip: &Clip,
    config: &RunConfig,
    pool: &WorkerPool,
) -> Result<RunOutcome, RuntimeError> {
    run_clip_controlled(clip, config, pool, &RunControl::default())
}

/// [`run_clip`] with [`RunControl`] hooks attached: per-tile progress
/// callbacks, cooperative cancellation (checked at tile boundaries — a
/// cancelled run checkpoints its finished tiles and returns an
/// incomplete, resumable outcome), and an optional cross-run
/// [`EngineCache`]. This is the entry point long-lived embedders such as
/// `cardopc-serve` drive; `run_clip` is this with no hooks.
///
/// # Errors
///
/// See [`run_clip`].
///
/// # Panics
///
/// See [`run_clip`].
pub fn run_clip_controlled(
    clip: &Clip,
    config: &RunConfig,
    pool: &WorkerPool,
    control: &RunControl<'_>,
) -> Result<RunOutcome, RuntimeError> {
    let start = std::time::Instant::now();
    let flow = CardOpc::new(config.opc.clone());
    let partition = partition_clip(clip, &config.tiling)?;

    let run_dir = match &config.run_dir {
        Some(path) => Some(RunDir::open(path)?),
        None => None,
    };
    let checkpoints = match &run_dir {
        Some(dir) => dir.load_records()?,
        None => Default::default(),
    };
    let mut sink = match &run_dir {
        Some(dir) => Some(dir.append_handle()?),
        None => None,
    };

    let outcome = run_tiles_controlled(
        &partition,
        &flow,
        pool,
        &checkpoints,
        config.max_tiles,
        sink.as_mut(),
        control,
    )?;
    let complete = outcome.remaining == 0;

    let stitched = complete.then(|| {
        stitch(
            &partition,
            outcome
                .results
                .iter()
                .flat_map(|r| r.record.shapes.iter().cloned()),
            config.opc.mrc.as_ref(),
        )
    });

    let manifest = RunManifest::build(
        clip.name(),
        &partition,
        &outcome,
        stitched.as_ref(),
        pool.parallelism(),
        start.elapsed().as_secs_f64(),
    );
    if complete {
        if let Some(dir) = &run_dir {
            dir.write_manifest(&manifest.to_json(true))?;
            // The timing-free companion: byte-identical across reruns,
            // resumes, worker counts and cache states of the same input.
            dir.write_stable_manifest(&manifest.to_json(false))?;
        }
    }

    Ok(RunOutcome {
        manifest,
        stitched,
        cancelled: outcome.cancelled,
        results: outcome.results,
        complete,
    })
}
