//! The run manifest: per-tile and aggregate statistics of a tiled run.
//!
//! Two renderings: a human table for stdout, and JSON for tooling. The
//! JSON comes in two forms — with timing (`to_json(true)`, what the CLI
//! writes) and without (`to_json(false)`): the timing-free form contains
//! only quantities that are a pure function of the input (design, tiling,
//! per-tile metrics, aggregate scores), so two runs over the same input
//! produce byte-identical strings regardless of scheduler pool size, wall
//! time,
//! or whether tiles were resumed from a checkpoint.

use crate::json::Json;
use crate::schedule::{ScheduleOutcome, TileResult};
use crate::stitch::Stitched;
use std::fmt::Write as _;

/// Per-tile summary row.
#[derive(Clone, Debug, PartialEq)]
pub struct TileSummary {
    /// Tile index.
    pub index: usize,
    /// Tile name (`clip:txxty`).
    pub name: String,
    /// Targets in the halo window.
    pub shapes: usize,
    /// Targets owned.
    pub owned: usize,
    /// Sum of |EPE| over owned sites, nm.
    pub epe_sum_nm: f64,
    /// EPE violations over owned sites.
    pub epe_violations: usize,
    /// Core-restricted PV-band area, nm².
    pub pvb_nm2: f64,
    /// MRC violations before/after the tile's resolve pass.
    pub mrc_initial: usize,
    /// MRC violations left after resolving.
    pub mrc_remaining: usize,
    /// Wall seconds spent correcting the tile.
    pub seconds: f64,
    /// Whether the tile was resumed from a checkpoint.
    pub resumed: bool,
    /// Whether the tile was replayed from the content-addressed tile
    /// cache.
    pub cached: bool,
}

/// Aggregate scores over the completed tiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Aggregate {
    /// Total targets (each counted once, by its owner tile).
    pub shapes: usize,
    /// Sum of |EPE| in nm.
    pub epe_sum_nm: f64,
    /// EPE violation count.
    pub epe_violations: usize,
    /// PV-band area, nm².
    pub pvb_nm2: f64,
    /// MRC violations before resolving, summed over tiles.
    pub mrc_initial: usize,
    /// MRC violations left after resolving, summed over tiles.
    pub mrc_remaining: usize,
    /// Cross-tile seam spacing violations found at stitch time.
    pub seam_violations: usize,
}

/// The manifest of one tiled run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Design/clip name.
    pub design: String,
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Core tile edge, nm.
    pub tile_size: f64,
    /// Halo margin, nm.
    pub halo: f64,
    /// Per-tile rows, sorted by tile index (completed tiles only).
    pub tiles: Vec<TileSummary>,
    /// Aggregates over the completed tiles.
    pub total: Aggregate,
    /// Aggregated owned-shape |EPE| per iteration (element-wise sum of
    /// the tiles' owned histories).
    pub epe_history: Vec<f64>,
    /// `true` when every tile of the partition completed.
    pub complete: bool,
    /// Tiles executed this run.
    pub executed: usize,
    /// Tiles resumed from checkpoints.
    pub resumed: usize,
    /// Tiles left unfinished.
    pub remaining: usize,
    /// Pool executors used.
    pub workers: usize,
    /// Executed tiles replayed from the tile cache.
    pub cache_hits: usize,
    /// Executed tiles corrected and fed into the tile cache (0 when no
    /// cache was attached).
    pub cache_misses: usize,
    /// End-to-end wall seconds of this run.
    pub wall_seconds: f64,
    /// Sum of per-tile correction seconds (executed tiles).
    pub tile_seconds: f64,
}

impl RunManifest {
    /// Assembles a manifest from the scheduler outcome and (when the run
    /// completed) the stitched mask.
    pub fn build(
        design: &str,
        partition: &crate::partition::Partition,
        outcome: &ScheduleOutcome,
        stitched: Option<&Stitched>,
        workers: usize,
        wall_seconds: f64,
    ) -> RunManifest {
        let tiles: Vec<TileSummary> = outcome.results.iter().map(summarize).collect();
        let mut total = Aggregate {
            seam_violations: stitched.map_or(0, |s| s.seam_violations.len()),
            ..Aggregate::default()
        };
        let mut epe_history: Vec<f64> = Vec::new();
        for t in &outcome.results {
            let m = &t.record.metrics;
            total.shapes += m.owned;
            total.epe_sum_nm += m.epe_sum_nm;
            total.epe_violations += m.epe_violations;
            total.pvb_nm2 += m.pvb_nm2;
            total.mrc_initial += m.mrc_initial;
            total.mrc_remaining += m.mrc_remaining;
            if epe_history.len() < t.record.owned_epe_history.len() {
                epe_history.resize(t.record.owned_epe_history.len(), 0.0);
            }
            for (acc, v) in epe_history.iter_mut().zip(&t.record.owned_epe_history) {
                *acc += v;
            }
        }
        RunManifest {
            design: design.to_string(),
            nx: partition.nx,
            ny: partition.ny,
            tile_size: partition.config.tile_size,
            halo: partition.config.halo,
            tiles,
            total,
            epe_history,
            complete: outcome.remaining == 0,
            executed: outcome.executed,
            resumed: outcome.resumed,
            remaining: outcome.remaining,
            workers,
            cache_hits: outcome.cache_hits,
            cache_misses: outcome.cache_misses,
            wall_seconds,
            tile_seconds: outcome.tile_seconds,
        }
    }

    /// Worker utilization: correction seconds per executor-second of wall
    /// time (1.0 = every executor busy correcting for the whole run).
    pub fn utilization(&self) -> f64 {
        if self.wall_seconds > 0.0 && self.workers > 0 {
            self.tile_seconds / (self.workers as f64 * self.wall_seconds)
        } else {
            0.0
        }
    }

    /// Serialises the manifest as JSON.
    ///
    /// With `include_timing` the output carries seconds, worker counts and
    /// execute/resume tallies. Without, it is restricted to
    /// input-determined quantities and is **byte-identical** across
    /// reruns, scheduler pool sizes, and checkpoint resumes of the same
    /// input — the form tests and CI compare.
    pub fn to_json(&self, include_timing: bool) -> String {
        let tiles = Json::Arr(
            self.tiles
                .iter()
                .map(|t| {
                    let mut fields = vec![
                        ("tile", Json::num_usize(t.index)),
                        ("name", Json::Str(t.name.clone())),
                        ("shapes", Json::num_usize(t.shapes)),
                        ("owned", Json::num_usize(t.owned)),
                        ("epe_sum_nm", Json::Num(t.epe_sum_nm)),
                        ("epe_violations", Json::num_usize(t.epe_violations)),
                        ("pvb_nm2", Json::Num(t.pvb_nm2)),
                        ("mrc_initial", Json::num_usize(t.mrc_initial)),
                        ("mrc_remaining", Json::num_usize(t.mrc_remaining)),
                    ];
                    if include_timing {
                        fields.push(("seconds", Json::Num(t.seconds)));
                        fields.push(("resumed", Json::Bool(t.resumed)));
                        fields.push(("cached", Json::Bool(t.cached)));
                    }
                    Json::obj(fields)
                })
                .collect(),
        );
        let total = Json::obj(vec![
            ("shapes", Json::num_usize(self.total.shapes)),
            ("epe_sum_nm", Json::Num(self.total.epe_sum_nm)),
            ("epe_violations", Json::num_usize(self.total.epe_violations)),
            ("pvb_nm2", Json::Num(self.total.pvb_nm2)),
            ("mrc_initial", Json::num_usize(self.total.mrc_initial)),
            ("mrc_remaining", Json::num_usize(self.total.mrc_remaining)),
            (
                "seam_violations",
                Json::num_usize(self.total.seam_violations),
            ),
        ]);
        let mut fields = vec![
            ("design", Json::Str(self.design.clone())),
            ("nx", Json::num_usize(self.nx)),
            ("ny", Json::num_usize(self.ny)),
            ("tile_size", Json::Num(self.tile_size)),
            ("halo", Json::Num(self.halo)),
            ("complete", Json::Bool(self.complete)),
            ("tiles", tiles),
            ("total", total),
            ("epe_history", Json::num_arr(&self.epe_history)),
        ];
        if include_timing {
            fields.push(("executed", Json::num_usize(self.executed)));
            fields.push(("resumed", Json::num_usize(self.resumed)));
            fields.push(("remaining", Json::num_usize(self.remaining)));
            fields.push(("workers", Json::num_usize(self.workers)));
            fields.push(("cache_hits", Json::num_usize(self.cache_hits)));
            fields.push(("cache_misses", Json::num_usize(self.cache_misses)));
            fields.push(("wall_seconds", Json::Num(self.wall_seconds)));
            fields.push(("tile_seconds", Json::Num(self.tile_seconds)));
            fields.push(("utilization", Json::Num(self.utilization())));
        }
        Json::obj(fields).to_string_compact()
    }

    /// Renders the manifest as a fixed-width table for the terminal.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run: {}  grid {}x{}  tile {} nm  halo {} nm  workers {}",
            self.design, self.nx, self.ny, self.tile_size, self.halo, self.workers
        );
        let _ = writeln!(
            out,
            "{:>5} {:<18} {:>7} {:>7} {:>12} {:>7} {:>14} {:>5} {:>8} {:>8}",
            "tile", "name", "shapes", "owned", "epe[nm]", "viol", "pvb[nm2]", "mrc", "sec", "state"
        );
        for t in &self.tiles {
            let _ = writeln!(
                out,
                "{:>5} {:<18} {:>7} {:>7} {:>12.2} {:>7} {:>14.0} {:>5} {:>8.2} {:>8}",
                t.index,
                t.name,
                t.shapes,
                t.owned,
                t.epe_sum_nm,
                t.epe_violations,
                t.pvb_nm2,
                t.mrc_remaining,
                t.seconds,
                if t.resumed {
                    "resumed"
                } else if t.cached {
                    "cached"
                } else {
                    "run"
                }
            );
        }
        let _ = writeln!(
            out,
            "{:>5} {:<18} {:>7} {:>7} {:>12.2} {:>7} {:>14.0} {:>5} {:>8.2}",
            "all",
            if self.complete { "complete" } else { "PARTIAL" },
            "",
            self.total.shapes,
            self.total.epe_sum_nm,
            self.total.epe_violations,
            self.total.pvb_nm2,
            self.total.mrc_remaining,
            self.tile_seconds,
        );
        let _ = writeln!(
            out,
            "seam spacing violations: {}   wall {:.2} s   utilization {:.0}%",
            self.total.seam_violations,
            self.wall_seconds,
            100.0 * self.utilization()
        );
        out
    }
}

fn summarize(t: &TileResult) -> TileSummary {
    let m = &t.record.metrics;
    TileSummary {
        index: t.record.index,
        name: t.record.name.clone(),
        shapes: m.shapes,
        owned: m.owned,
        epe_sum_nm: m.epe_sum_nm,
        epe_violations: m.epe_violations,
        pvb_nm2: m.pvb_nm2,
        mrc_initial: m.mrc_initial,
        mrc_remaining: m.mrc_remaining,
        seconds: t.record.seconds,
        resumed: t.resumed,
        cached: t.cached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{TileMetrics, TileRecord};
    use crate::partition::{partition_clip, TilingConfig};
    use cardopc_geometry::{Point, Polygon};
    use cardopc_layout::Clip;

    fn outcome() -> (crate::partition::Partition, ScheduleOutcome) {
        let clip = Clip::new(
            "man-test",
            1000.0,
            1000.0,
            vec![Polygon::rect(
                Point::new(100.0, 100.0),
                Point::new(300.0, 170.0),
            )],
        );
        let partition = partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 500.0,
                halo: 100.0,
            },
        )
        .unwrap();
        let record = |index: usize, seconds: f64| TileRecord {
            index,
            name: format!("man-test:{}x0", index),
            input_hash: index as u64,
            owned_epe_history: vec![4.0, 2.0],
            epe_history: vec![5.0, 3.0],
            shapes: Vec::new(),
            metrics: TileMetrics {
                shapes: 2,
                owned: 1,
                epe_sum_nm: 2.5,
                epe_violations: 1,
                pvb_nm2: 100.0,
                mrc_initial: 1,
                mrc_remaining: 0,
            },
            seconds,
        };
        let sched = ScheduleOutcome {
            results: vec![
                TileResult {
                    record: record(0, 1.0),
                    resumed: false,
                    cached: false,
                },
                TileResult {
                    record: record(1, 9.0),
                    resumed: true,
                    cached: false,
                },
            ],
            executed: 1,
            resumed: 1,
            remaining: 0,
            cancelled: false,
            tile_seconds: 1.0,
            cache_hits: 0,
            cache_misses: 0,
        };
        (partition, sched)
    }

    #[test]
    fn aggregates_and_history_sum_over_tiles() {
        let (p, sched) = outcome();
        let m = RunManifest::build("man-test", &p, &sched, None, 2, 0.5);
        assert_eq!(m.total.shapes, 2);
        assert_eq!(m.total.epe_sum_nm, 5.0);
        assert_eq!(m.total.epe_violations, 2);
        assert_eq!(m.epe_history, vec![8.0, 4.0]);
        assert!(m.complete);
        assert!((m.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timing_free_json_ignores_resume_and_timing() {
        let (p, mut sched) = outcome();
        let m1 = RunManifest::build("man-test", &p, &sched, None, 2, 0.5);
        // Same records, different timing/resume provenance.
        sched.results[1].resumed = false;
        sched.results[0].record.seconds = 99.0;
        sched.executed = 2;
        sched.resumed = 0;
        let m2 = RunManifest::build("man-test", &p, &sched, None, 7, 123.0);
        assert_eq!(m1.to_json(false), m2.to_json(false));
        assert_ne!(m1.to_json(true), m2.to_json(true));
        // Parseable by our own reader.
        assert!(crate::json::Json::parse(&m1.to_json(true)).is_ok());
    }

    #[test]
    fn table_renders_every_tile() {
        let (p, sched) = outcome();
        let m = RunManifest::build("man-test", &p, &sched, None, 2, 0.5);
        let table = m.render_table();
        assert!(table.contains("man-test:0x0"));
        assert!(table.contains("resumed"));
        assert!(table.contains("complete"));
    }
}
