//! Halo-aware clip partitioning.
//!
//! A clip is split into an `nx × ny` grid of *core* windows of
//! `tile_size` nm. Each tile's working window is its core expanded by the
//! halo margin on every side — the halo provides optical context (the
//! SOCS kernels' ambit) so shapes near a core boundary are corrected under
//! the same imaging they would see in a monolithic run. Every target is
//! *owned* by exactly one tile (the one whose core contains its bbox
//! centre, under half-open window semantics), so the stitcher can merge
//! per-tile outputs without duplicates; non-owned halo copies are
//! optimised too but discarded at stitch time.
//!
//! Tile windows are **uniform**: edge tiles extend past the clip into
//! empty space rather than clamping, so every tile shares one engine
//! extent (one kernel set per worker) and, when `tile_size` and `halo`
//! are multiples of the simulation pitch, every tile's raster is
//! pixel-aligned with the monolithic raster.

use crate::RuntimeError;
use cardopc_geometry::{BBox, Point, RTree};
use cardopc_layout::Clip;

/// Tiling parameters, in nanometres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TilingConfig {
    /// Core window edge length.
    pub tile_size: f64,
    /// Halo margin added on every side of a core window.
    ///
    /// Must cover the optical ambit for seamless stitching: the SOCS
    /// kernels' support radius (a few wavelengths, ~0.5–1 µm at 193i)
    /// plus the maximum total control-point move.
    pub halo: f64,
}

impl TilingConfig {
    /// Validates the tiling parameters.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidConfig`] for non-positive or non-finite
    /// sizes, or a negative halo.
    pub fn validate(&self) -> Result<(), RuntimeError> {
        if !(self.tile_size.is_finite() && self.tile_size > 0.0) {
            return Err(RuntimeError::InvalidConfig(
                "tile_size must be positive and finite",
            ));
        }
        if !(self.halo.is_finite() && self.halo >= 0.0) {
            return Err(RuntimeError::InvalidConfig(
                "halo must be non-negative and finite",
            ));
        }
        Ok(())
    }
}

/// One tile of a partitioned clip.
#[derive(Clone, Debug)]
pub struct Tile {
    /// Tile index in row-major order (`index = ty * nx + tx`).
    pub index: usize,
    /// Column of this tile in the grid.
    pub tx: usize,
    /// Row of this tile in the grid.
    pub ty: usize,
    /// Working-window origin in chip coordinates (core min − halo; may be
    /// negative on boundary tiles).
    pub origin: Point,
    /// Ownership core in chip coordinates; cores partition the clip
    /// window disjointly under half-open semantics.
    pub core: BBox,
    /// The tile's working clip: every target whose bbox intersects the
    /// halo window, translated into window coordinates (−`origin`).
    pub clip: Clip,
    /// For each target of [`Tile::clip`], its index in the source clip's
    /// target list.
    pub global_ids: Vec<usize>,
    /// For each target of [`Tile::clip`], whether this tile owns it.
    pub owned: Vec<bool>,
}

impl Tile {
    /// Number of targets this tile owns.
    pub fn owned_count(&self) -> usize {
        self.owned.iter().filter(|&&o| o).count()
    }
}

/// A clip partitioned into halo tiles.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The tiles, in row-major order.
    pub tiles: Vec<Tile>,
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Uniform working-window size (`tile_size + 2·halo`, each axis).
    pub window: Point,
    /// The source clip extent.
    pub clip_size: Point,
    /// The tiling that produced this partition.
    pub config: TilingConfig,
}

/// Partitions a clip into a grid of halo tiles.
///
/// # Errors
///
/// [`RuntimeError::InvalidConfig`] when the tiling parameters are
/// unusable.
pub fn partition_clip(clip: &Clip, config: &TilingConfig) -> Result<Partition, RuntimeError> {
    config.validate()?;
    let ts = config.tile_size;
    let halo = config.halo;
    let nx = (clip.width() / ts).ceil().max(1.0) as usize;
    let ny = (clip.height() / ts).ceil().max(1.0) as usize;
    let window = Point::new(ts + 2.0 * halo, ts + 2.0 * halo);

    // Shape membership via an R-tree over target bboxes: one bulk load,
    // then one window query per tile instead of nx·ny full scans.
    let tree = RTree::bulk_load(
        clip.targets()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.bbox(), i))
            .collect(),
    );

    // Owner tile of a point: the core grid cell containing it, clamped so
    // shapes centred exactly on the clip's far edge stay owned.
    let owner_of = |c: Point| -> (usize, usize) {
        let ox = ((c.x / ts).floor().max(0.0) as usize).min(nx - 1);
        let oy = ((c.y / ts).floor().max(0.0) as usize).min(ny - 1);
        (ox, oy)
    };

    let mut tiles = Vec::with_capacity(nx * ny);
    for ty in 0..ny {
        for tx in 0..nx {
            let index = ty * nx + tx;
            let core_min = Point::new(tx as f64 * ts, ty as f64 * ts);
            let core = BBox::new(core_min, core_min + Point::new(ts, ts));
            let origin = core_min - Point::new(halo, halo);
            let window_box = BBox::new(origin, origin + window);

            // Deterministic membership order: sort the query hits by
            // global index (R-tree traversal order is structural).
            let mut ids = tree.query_indices(&window_box);
            ids.sort_unstable();
            let mut global_ids = Vec::with_capacity(ids.len());
            let mut owned = Vec::with_capacity(ids.len());
            let mut targets = Vec::with_capacity(ids.len());
            for id in ids {
                let gid = tree.item(id).1;
                let target = &clip.targets()[gid];
                global_ids.push(gid);
                owned.push(owner_of(target.bbox().center()) == (tx, ty));
                targets.push(target.translated(-origin));
            }

            tiles.push(Tile {
                index,
                tx,
                ty,
                origin,
                core,
                clip: Clip::new(
                    format!("{}:{}x{}", clip.name(), tx, ty),
                    window.x,
                    window.y,
                    targets,
                ),
                global_ids,
                owned,
            });
        }
    }

    Ok(Partition {
        tiles,
        nx,
        ny,
        window,
        clip_size: Point::new(clip.width(), clip.height()),
        config: *config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cardopc_geometry::Polygon;

    fn test_clip() -> Clip {
        // 2000×2000 clip, shapes scattered so each 1000-core owns some and
        // one shape straddles the x = 1000 seam.
        let rects = vec![
            Polygon::rect(Point::new(100.0, 100.0), Point::new(300.0, 170.0)),
            Polygon::rect(Point::new(900.0, 400.0), Point::new(1100.0, 470.0)),
            Polygon::rect(Point::new(1500.0, 200.0), Point::new(1800.0, 270.0)),
            Polygon::rect(Point::new(400.0, 1500.0), Point::new(700.0, 1570.0)),
            Polygon::rect(Point::new(1200.0, 1700.0), Point::new(1600.0, 1770.0)),
        ];
        Clip::new("part-test", 2000.0, 2000.0, rects)
    }

    #[test]
    fn grid_dimensions_and_uniform_windows() {
        let cfg = TilingConfig {
            tile_size: 1000.0,
            halo: 256.0,
        };
        let p = partition_clip(&test_clip(), &cfg).unwrap();
        assert_eq!((p.nx, p.ny), (2, 2));
        assert_eq!(p.tiles.len(), 4);
        assert_eq!(p.window, Point::new(1512.0, 1512.0));
        for (i, t) in p.tiles.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.clip.width(), 1512.0);
            assert_eq!(
                t.origin,
                Point::new(t.tx as f64 * 1000.0 - 256.0, t.ty as f64 * 1000.0 - 256.0)
            );
        }
    }

    #[test]
    fn every_shape_owned_exactly_once() {
        for halo in [0.0, 128.0, 600.0] {
            let cfg = TilingConfig {
                tile_size: 1000.0,
                halo,
            };
            let clip = test_clip();
            let p = partition_clip(&clip, &cfg).unwrap();
            let mut owners = vec![0usize; clip.targets().len()];
            for t in &p.tiles {
                for (gid, owned) in t.global_ids.iter().zip(&t.owned) {
                    if *owned {
                        owners[*gid] += 1;
                    }
                }
            }
            assert_eq!(owners, vec![1; owners.len()], "halo {halo}");
        }
    }

    #[test]
    fn halo_membership_includes_straddlers() {
        let cfg = TilingConfig {
            tile_size: 1000.0,
            halo: 200.0,
        };
        let p = partition_clip(&test_clip(), &cfg).unwrap();
        // Shape 1 spans x ∈ [900, 1100]: member of both left and right
        // tiles of row 0, owned by the right one (centre x = 1000 is in
        // the half-open core [1000, 2000)).
        let left = &p.tiles[0];
        let right = &p.tiles[1];
        let pos_l = left.global_ids.iter().position(|&g| g == 1).unwrap();
        let pos_r = right.global_ids.iter().position(|&g| g == 1).unwrap();
        assert!(!left.owned[pos_l]);
        assert!(right.owned[pos_r]);
        // Translated into each tile's window coordinates.
        assert_eq!(
            left.clip.targets()[pos_l].bbox().min,
            Point::new(900.0 - left.origin.x, 400.0 - left.origin.y)
        );
        assert_eq!(
            right.clip.targets()[pos_r].bbox().min,
            Point::new(900.0 - right.origin.x, 400.0 - right.origin.y)
        );
    }

    #[test]
    fn single_tile_partition_covers_everything() {
        let clip = test_clip();
        let cfg = TilingConfig {
            tile_size: 2000.0,
            halo: 0.0,
        };
        let p = partition_clip(&clip, &cfg).unwrap();
        assert_eq!(p.tiles.len(), 1);
        let t = &p.tiles[0];
        assert_eq!(t.clip.targets().len(), clip.targets().len());
        assert!(t.owned.iter().all(|&o| o));
        assert_eq!(t.origin, Point::ZERO);
    }

    #[test]
    fn invalid_configs_rejected() {
        let clip = test_clip();
        for cfg in [
            TilingConfig {
                tile_size: 0.0,
                halo: 0.0,
            },
            TilingConfig {
                tile_size: f64::NAN,
                halo: 0.0,
            },
            TilingConfig {
                tile_size: 100.0,
                halo: -1.0,
            },
        ] {
            assert!(matches!(
                partition_clip(&clip, &cfg),
                Err(RuntimeError::InvalidConfig(_))
            ));
        }
    }
}
