//! Tile job scheduling over the shared worker pool.
//!
//! Tiles are fanned over [`WorkerPool`] slots: each slot (one worker
//! thread, plus the participating submitter) claims tiles from a shared
//! atomic counter and runs the full OPC flow on them with a per-slot
//! [`LithoEngine`] cache keyed by window extent — tile windows are
//! uniform, so in practice each slot builds exactly one engine and reuses
//! it for every tile it claims. The claim order is dynamic (load
//! balanced), but results are merged and sorted by tile index afterwards,
//! so the outcome is **deterministic for any scheduler pool size**: each
//! tile's correction is a pure function of its input clip, and the
//! per-tile outputs are order-independent. (The litho engine separately
//! snapshots the *global* pool's parallelism for SOCS chunking, so
//! `CARDOPC_THREADS` can shift raw sums within the litho layer's
//! documented < 1e-12 reassociation rounding — the same effect it has on
//! a monolithic run.)
//!
//! Finished tiles are appended to the checkpoint file (when one is given)
//! as they complete, under a mutex; line order in the file is
//! nondeterministic but records are self-describing, so resume does not
//! care.

use crate::cache::{tile_cache_key, CachedShape, CachedTile};
use crate::checkpoint::{tile_input_hash, RunDir, StitchedShape, TileMetrics, TileRecord};
use crate::handle::{EngineKey, RunControl, TileEvent};
use crate::partition::{Partition, Tile};
use crate::RuntimeError;
use cardopc_geometry::{Grid, Point, Polygon};
use cardopc_litho::{measure_epe, metal_measure_points, via_measure_points, LithoEngine};
use cardopc_litho::{ProcessCondition, WorkerPool};
use cardopc_opc::{engine_for_extent_at, CardOpc, MeasureConvention, EPE_TOLERANCE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Outcome of one tile: its checkpoint record, and whether it was resumed
/// from a previous run rather than executed.
#[derive(Clone, Debug)]
pub struct TileResult {
    /// The tile's record (identical whether executed, replayed from the
    /// tile cache, or resumed).
    pub record: TileRecord,
    /// `true` when the record came from the checkpoint file.
    pub resumed: bool,
    /// `true` when the record was replayed from the content-addressed
    /// tile cache rather than corrected.
    pub cached: bool,
}

/// The scheduler's result over a whole partition.
#[derive(Clone, Debug, Default)]
pub struct ScheduleOutcome {
    /// Completed tiles sorted by tile index. With a tile budget or a
    /// cancelled run this can be a subset of the partition (not
    /// necessarily contiguous: resumed tiles are kept wherever they fall).
    pub results: Vec<TileResult>,
    /// Tiles executed in this run.
    pub executed: usize,
    /// Tiles reused from checkpoints.
    pub resumed: usize,
    /// Tiles left unfinished (tile budget exhausted or run cancelled).
    pub remaining: usize,
    /// Sum of per-tile wall seconds spent executing (not resumed) tiles.
    pub tile_seconds: f64,
    /// Executed tiles answered by the tile cache (replayed, not
    /// corrected). Always ≤ `executed`; 0 when no cache was attached.
    pub cache_hits: usize,
    /// Executed tiles that corrected and fed the tile cache. 0 when no
    /// cache was attached.
    pub cache_misses: usize,
    /// `true` when the run stopped early because its [`RunHandle`]
    /// (see [`crate::RunControl`]) was cancelled.
    pub cancelled: bool,
}

/// Per-slot state: an engine memo keyed by `(width, height, pitch bits)`.
/// Windows are uniform per run, so this holds one engine per slot, but the
/// key keeps correctness if a future caller mixes extents. When a shared
/// [`EngineCache`] is attached the memo holds `Arc`s into it (no lock on
/// the per-tile hot path); otherwise the engines are run-local.
/// Per-tile outcome: the record plus whether it came out of the tile cache.
type SlotResult = (usize, Result<(TileRecord, bool), RuntimeError>);

struct Slot {
    engines: HashMap<EngineKey, Arc<LithoEngine>>,
    results: Vec<SlotResult>,
}

/// Runs every not-yet-checkpointed tile of `partition` over `pool`.
///
/// `checkpoints` is consulted per tile: a record whose stored hash matches
/// the tile's current input hash is reused verbatim (the tile is not
/// executed); stale or missing records mean the tile runs. At most
/// `max_tiles` tiles are *executed* (resumed tiles are free); `None` means
/// no budget. Records of executed tiles are appended to `sink` as they
/// complete.
///
/// # Errors
///
/// [`RuntimeError::Tile`] for the lowest-indexed tile whose flow failed,
/// or [`RuntimeError::Io`] when checkpoint appending failed.
pub fn run_tiles(
    partition: &Partition,
    flow: &CardOpc,
    pool: &WorkerPool,
    checkpoints: &HashMap<usize, TileRecord>,
    max_tiles: Option<usize>,
    sink: Option<&mut std::fs::File>,
) -> Result<ScheduleOutcome, RuntimeError> {
    run_tiles_controlled(
        partition,
        flow,
        pool,
        checkpoints,
        max_tiles,
        sink,
        &RunControl::default(),
    )
}

/// [`run_tiles`] with [`RunControl`] hooks: per-tile progress events,
/// cooperative cancellation checked before each tile claim, and an
/// optional cross-run engine cache.
///
/// Cancellation stops new tiles from being claimed; tiles already in
/// flight finish and are checkpointed, so a cancelled run resumes exactly
/// like a budget-limited one. The outcome's `cancelled` flag records that
/// the handle fired.
///
/// # Errors
///
/// See [`run_tiles`].
#[allow(clippy::too_many_arguments)]
pub fn run_tiles_controlled(
    partition: &Partition,
    flow: &CardOpc,
    pool: &WorkerPool,
    checkpoints: &HashMap<usize, TileRecord>,
    max_tiles: Option<usize>,
    sink: Option<&mut std::fs::File>,
    control: &RunControl<'_>,
) -> Result<ScheduleOutcome, RuntimeError> {
    let config = flow.config();
    let total = partition.tiles.len();

    // Split tiles into resumable and to-run.
    let mut results: Vec<TileResult> = Vec::with_capacity(total);
    let mut todo: Vec<&Tile> = Vec::new();
    for tile in &partition.tiles {
        let hash = tile_input_hash(tile, config);
        match checkpoints.get(&tile.index) {
            Some(record) if record.input_hash == hash => results.push(TileResult {
                record: record.clone(),
                resumed: true,
                cached: false,
            }),
            _ => todo.push(tile),
        }
    }
    let resumed = results.len();
    if let Some(budget) = max_tiles {
        todo.truncate(budget);
    }

    // Resumed tiles are "finished" before any correction work starts:
    // report them first so an observer's completed counter is monotonic.
    if let Some(progress) = control.progress {
        for (done, r) in results.iter().enumerate() {
            progress(&TileEvent {
                tile: r.record.index,
                name: r.record.name.clone(),
                resumed: true,
                cached: false,
                seconds: r.record.seconds,
                completed: done + 1,
                total,
            });
        }
    }

    // Fan the to-run tiles over the pool: each slot claims tiles from the
    // shared cursor until the list is drained or the run is cancelled.
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(resumed);
    let sink = Mutex::new(sink);
    let io_error: Mutex<Option<RuntimeError>> = Mutex::new(None);
    let mut slots: Vec<Slot> = (0..pool.parallelism().max(1))
        .map(|_| Slot {
            engines: HashMap::new(),
            results: Vec::new(),
        })
        .collect();

    pool.run_with_slots(&mut slots, |slot_index, slot| loop {
        if control.cancelled() {
            return;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(tile) = todo.get(i) else { return };
        let outcome = execute_tile(tile, partition, flow, config, slot, slot_index, control);
        let outcome = match outcome {
            // Cancelled while waiting on an in-flight cache key: no
            // result for this tile; the loop's cancellation check exits.
            Ok(None) => continue,
            Ok(Some(pair)) => Ok(pair),
            Err(e) => Err(e),
        };
        if let Ok((record, cached)) = &outcome {
            let mut guard = sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(file) = guard.as_deref_mut() {
                if let Err(e) = RunDir::append_record(file, record) {
                    let mut io = io_error
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    io.get_or_insert(e);
                }
            }
            drop(guard);
            if let Some(progress) = control.progress {
                progress(&TileEvent {
                    tile: record.index,
                    name: record.name.clone(),
                    resumed: false,
                    cached: *cached,
                    seconds: record.seconds,
                    completed: completed.fetch_add(1, Ordering::AcqRel) + 1,
                    total,
                });
            }
        }
        slot.results.push((tile.index, outcome));
    });

    if let Some(e) = io_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(e);
    }

    // Merge per-slot results; surface the lowest-indexed failure so the
    // reported error is deterministic regardless of claim order.
    let mut executed_results: Vec<SlotResult> = slots.into_iter().flat_map(|s| s.results).collect();
    executed_results.sort_unstable_by_key(|(index, _)| *index);
    let executed = executed_results.len();
    let mut tile_seconds = 0.0;
    let mut cache_hits = 0usize;
    for (_, outcome) in executed_results {
        let (record, cached) = outcome?;
        tile_seconds += record.seconds;
        cache_hits += cached as usize;
        results.push(TileResult {
            record,
            resumed: false,
            cached,
        });
    }
    results.sort_unstable_by_key(|r| r.record.index);
    let cache_misses = if control.cache.is_some() {
        executed - cache_hits
    } else {
        0
    };

    Ok(ScheduleOutcome {
        remaining: total - resumed - executed,
        results,
        executed,
        resumed,
        tile_seconds,
        cache_hits,
        cache_misses,
        cancelled: control.cancelled(),
    })
}

/// Corrects exactly one tile of `partition` and returns its checkpoint
/// record — the fleet worker's entry point. Runs through the same
/// (optionally cached) `correct_tile` → `materialize` path as the full
/// scheduler, so the record is byte-identical to what a single-process
/// run produces for that tile. `slot_index` selects the stripe of an
/// attached [`EngineCache`](crate::EngineCache) (callers with several
/// executor threads should spread indices to avoid lock contention).
/// `Ok(None)` means the control's handle was cancelled while the tile
/// waited on another caller's in-flight correction.
///
/// # Errors
///
/// [`RuntimeError::Tile`] when the flow fails, or
/// [`RuntimeError::InvalidConfig`] for an out-of-range tile index.
pub fn correct_single_tile(
    partition: &Partition,
    tile_index: usize,
    flow: &CardOpc,
    control: &RunControl<'_>,
    slot_index: usize,
) -> Result<Option<TileRecord>, RuntimeError> {
    let tile = partition
        .tiles
        .iter()
        .find(|t| t.index == tile_index)
        .ok_or(RuntimeError::InvalidConfig(
            "tile index outside the partition",
        ))?;
    let mut slot = Slot {
        engines: HashMap::new(),
        results: Vec::new(),
    };
    let outcome = execute_tile(
        tile,
        partition,
        flow,
        flow.config(),
        &mut slot,
        slot_index,
        control,
    )?;
    Ok(outcome.map(|(record, _cached)| record))
}

/// Runs one tile through the (optionally cached) correction path and
/// assembles its checkpoint record. `Ok(None)` means the run was
/// cancelled while the tile waited on another caller's in-flight
/// correction of the same pattern. The boolean is `true` for a cache
/// replay.
fn execute_tile(
    tile: &Tile,
    partition: &Partition,
    flow: &CardOpc,
    config: &cardopc_opc::OpcConfig,
    slot: &mut Slot,
    slot_index: usize,
    control: &RunControl<'_>,
) -> Result<Option<(TileRecord, bool)>, RuntimeError> {
    let start = std::time::Instant::now();
    let correct = |slot: &mut Slot| correct_tile(tile, flow, config, slot, slot_index, control);
    let (value, cached) = match control.cache {
        Some(cache) => {
            let key = tile_cache_key(tile, &partition.config, config);
            let cancelled = || control.cancelled();
            match cache.get_or_correct(key, &cancelled, || correct(slot))? {
                Some((value, hit)) => (CachedRef::Shared(value), hit),
                None => return Ok(None),
            }
        }
        None => (CachedRef::Owned(correct(slot)?), false),
    };
    let record = materialize(
        tile,
        partition,
        config,
        value.as_ref(),
        start.elapsed().as_secs_f64(),
    );
    Ok(Some((record, cached)))
}

/// Owned-or-shared corrected tile (avoids an `Arc` round trip on the
/// uncached path).
enum CachedRef {
    Shared(Arc<CachedTile>),
    Owned(CachedTile),
}

impl CachedRef {
    fn as_ref(&self) -> &CachedTile {
        match self {
            CachedRef::Shared(v) => v,
            CachedRef::Owned(v) => v,
        }
    }
}

/// Corrects one tile — the expensive part: the full OPC flow plus
/// scoring — producing a *window-relative* [`CachedTile`] that this tile
/// or any congruent one can replay via [`materialize`].
fn correct_tile(
    tile: &Tile,
    flow: &CardOpc,
    config: &cardopc_opc::OpcConfig,
    slot: &mut Slot,
    slot_index: usize,
    control: &RunControl<'_>,
) -> Result<CachedTile, RuntimeError> {
    let start = std::time::Instant::now();
    let cache = control.engines;
    let iterations = config.iterations;

    // Empty tiles (no targets anywhere in the halo window) produce an
    // empty result without touching the engine; the zero EPE histories
    // keep cross-tile aggregation aligned.
    if tile.clip.targets().is_empty() {
        return Ok(CachedTile {
            owned_epe_history: vec![0.0; iterations],
            epe_history: vec![0.0; iterations],
            shapes: Vec::new(),
            metrics: TileMetrics::default(),
            seconds: start.elapsed().as_secs_f64(),
        });
    }

    let key: EngineKey = (
        tile.clip.width().to_bits(),
        tile.clip.height().to_bits(),
        config.pitch.to_bits(),
        config.precision.tag(),
    );
    let engine: &LithoEngine = match slot.engines.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let build = || {
                engine_for_extent_at(
                    tile.clip.width(),
                    tile.clip.height(),
                    config.pitch,
                    config.precision,
                )
            };
            let engine = match cache {
                Some(cache) => cache.get_or_build(slot_index, key, build),
                None => build().map(Arc::new),
            }
            .map_err(|source| RuntimeError::Tile {
                tile: tile.index,
                source,
            })?;
            v.insert(engine)
        }
    };

    let optimized = flow
        .optimize_with_engine(&tile.clip, engine)
        .map_err(|source| RuntimeError::Tile {
            tile: tile.index,
            source,
        })?;

    // Owned-only convergence history: main shape `i` corresponds to
    // target `i` of the tile clip (SRAFs are appended after the mains and
    // carry 0.0 entries), so the ownership mask indexes rows directly.
    let owned_epe_history: Vec<f64> = optimized
        .per_shape_epe
        .iter()
        .map(|row| {
            row.iter()
                .zip(tile.owned.iter().chain(std::iter::repeat(&false)))
                .filter_map(|(epe, owned)| owned.then_some(*epe))
                .sum()
        })
        .collect();

    // Score the tile: simulate the whole halo window once, then measure
    // EPE only at the owned targets' sites and PVB only over the core.
    let mask_polys: Vec<Polygon> = optimized
        .shapes
        .iter()
        .map(|s| s.spline.to_polygon(config.samples_per_segment))
        .collect();
    let raster =
        cardopc_litho::rasterize(&mask_polys, engine.width(), engine.height(), engine.pitch());
    // Both focus states from a single forward mask FFT.
    let images = engine
        .aerial_images_multi(
            &raster,
            &[
                ProcessCondition::NOMINAL,
                ProcessCondition::inner(config.dose_delta),
            ],
        )
        .map_err(|e| RuntimeError::Tile {
            tile: tile.index,
            source: e.into(),
        })?;
    let (aerial, inner_aerial) = (&images[0], &images[1]);

    let owned_targets: Vec<Polygon> = tile
        .clip
        .targets()
        .iter()
        .zip(&tile.owned)
        .filter(|&(_, owned)| *owned)
        .map(|(t, _)| t.clone())
        .collect();
    let sites = match config.convention {
        MeasureConvention::ViaEdgeCenters => via_measure_points(&owned_targets),
        MeasureConvention::MetalSpacing(s) => metal_measure_points(&owned_targets, s),
    };
    let epe = measure_epe(aerial, engine.threshold(), &sites, config.epe_search);

    // Core-restricted PV band on the raw aerials: thresholding is fused
    // into the count (`binarize` maps `v >= t` to 1.0, so comparing
    // `v >= t` directly is exact).
    let pvb_nm2 = core_pvb(
        aerial,
        engine.effective_threshold(ProcessCondition::outer(config.dose_delta)),
        inner_aerial,
        engine.effective_threshold(ProcessCondition::inner(config.dose_delta)),
        tile,
    );

    // Window-relative output shapes: every *owned* main tagged with its
    // local target index, then every assist of the window. Assist seam
    // ownership is deliberately NOT decided here — an edge tile and an
    // interior tile can share a pattern yet split halo assists
    // differently (the owner grid clamps at the chip boundary), so the
    // filter runs per replaying tile in [`materialize`].
    let mut shapes = Vec::new();
    let mut main_index = 0usize;
    for shape in &optimized.shapes {
        if shape.is_sraf {
            shapes.push(cached_shape(shape, None));
        } else {
            if tile.owned[main_index] {
                shapes.push(cached_shape(shape, Some(main_index)));
            }
            main_index += 1;
        }
    }

    let metrics = TileMetrics {
        shapes: tile.clip.targets().len(),
        owned: owned_targets.len(),
        epe_sum_nm: epe.sum_abs(),
        epe_violations: epe.violations(EPE_TOLERANCE),
        pvb_nm2,
        mrc_initial: optimized.mrc_initial_violations,
        mrc_remaining: optimized.mrc_remaining,
    };

    Ok(CachedTile {
        owned_epe_history,
        epe_history: optimized.epe_history,
        shapes,
        metrics,
        seconds: start.elapsed().as_secs_f64(),
    })
}

fn cached_shape(shape: &cardopc_opc::OpcShape, target: Option<usize>) -> CachedShape {
    CachedShape {
        target,
        tension: shape.spline.tension(),
        control_points: shape.spline.control_points().to_vec(),
    }
}

/// Replays a window-relative corrected tile into a concrete tile's
/// checkpoint record by pure translation: control points gain the tile's
/// window origin, global target ids come from the tile's own id map, and
/// assists keep only those whose centre falls in this tile's core under
/// the partitioner's half-open owner convention (each assist is produced
/// identically by every tile whose window sees its parents, so core
/// ownership deduplicates them the same way it deduplicates mains). The
/// cold path routes through this same function, so a cache replay is
/// byte-identical to a cold correction by construction.
fn materialize(
    tile: &Tile,
    partition: &Partition,
    config: &cardopc_opc::OpcConfig,
    value: &CachedTile,
    seconds: f64,
) -> TileRecord {
    let ts = partition.config.tile_size;
    let owns = |c: Point| -> bool {
        let ox = ((c.x / ts).floor().max(0.0) as usize).min(partition.nx - 1);
        let oy = ((c.y / ts).floor().max(0.0) as usize).min(partition.ny - 1);
        (ox, oy) == (tile.tx, tile.ty)
    };
    let translate =
        |cps: &[Point]| -> Vec<Point> { cps.iter().map(|p| *p + tile.origin).collect() };
    let mut shapes = Vec::with_capacity(value.shapes.len());
    for s in &value.shapes {
        match s.target {
            Some(t) => shapes.push(StitchedShape {
                global_id: Some(tile.global_ids[t]),
                is_sraf: false,
                tension: s.tension,
                control_points: translate(&s.control_points),
            }),
            None => {
                let centre = cardopc_geometry::BBox::from_points(s.control_points.iter().copied())
                    .center()
                    + tile.origin;
                if owns(centre) {
                    shapes.push(StitchedShape {
                        global_id: None,
                        is_sraf: true,
                        tension: s.tension,
                        control_points: translate(&s.control_points),
                    });
                }
            }
        }
    }
    TileRecord {
        index: tile.index,
        name: tile.clip.name().to_string(),
        input_hash: tile_input_hash(tile, config),
        owned_epe_history: value.owned_epe_history.clone(),
        epe_history: value.epe_history.clone(),
        shapes,
        metrics: value.metrics.clone(),
        seconds,
    }
}

/// PV-band area restricted to the tile's core, nm², computed directly on
/// the raw outer/inner aerial images with their effective print thresholds
/// (equivalent to binarizing both and XOR-counting, without materialising
/// the binary grids). Pixel membership is by pixel centre, so the disjoint
/// cores of a partition count every seam pixel exactly once across tiles.
fn core_pvb(
    outer: &Grid,
    outer_threshold: f64,
    inner: &Grid,
    inner_threshold: f64,
    tile: &Tile,
) -> f64 {
    let pitch = outer.pitch();
    let px = pitch * pitch;
    // Core in window coordinates.
    let x0 = tile.core.min.x - tile.origin.x;
    let x1 = tile.core.max.x - tile.origin.x;
    let y0 = tile.core.min.y - tile.origin.y;
    let y1 = tile.core.max.y - tile.origin.y;
    let mut count = 0usize;
    for iy in 0..outer.height() {
        let cy = (iy as f64 + 0.5) * pitch;
        if cy < y0 || cy >= y1 {
            continue;
        }
        for ix in 0..outer.width() {
            let cx = (ix as f64 + 0.5) * pitch;
            if cx < x0 || cx >= x1 {
                continue;
            }
            let a = outer.get(ix, iy).unwrap_or(0.0);
            let b = inner.get(ix, iy).unwrap_or(0.0);
            if (a >= outer_threshold) != (b >= inner_threshold) {
                count += 1;
            }
        }
    }
    count as f64 * px
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_clip, TilingConfig};
    use cardopc_layout::Clip;
    use cardopc_opc::OpcConfig;

    fn small_clip() -> Clip {
        Clip::new(
            "sched-test",
            1024.0,
            1024.0,
            vec![
                Polygon::rect(Point::new(200.0, 200.0), Point::new(420.0, 270.0)),
                Polygon::rect(Point::new(460.0, 600.0), Point::new(900.0, 670.0)),
            ],
        )
    }

    fn config() -> OpcConfig {
        let mut c = OpcConfig::large_scale();
        c.iterations = 2;
        c.pitch = 16.0;
        c.mrc = None;
        c
    }

    #[test]
    fn schedule_is_deterministic_across_worker_counts() {
        let clip = small_clip();
        let partition = partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 512.0,
                halo: 256.0,
            },
        )
        .unwrap();
        let flow = CardOpc::new(config());
        let none = HashMap::new();
        let one = run_tiles(&partition, &flow, &WorkerPool::new(1), &none, None, None).unwrap();
        let four = run_tiles(&partition, &flow, &WorkerPool::new(4), &none, None, None).unwrap();
        assert_eq!(one.results.len(), 4);
        assert_eq!(one.executed, 4);
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.record.index, b.record.index);
            assert_eq!(a.record.shapes, b.record.shapes, "tile {}", a.record.index);
            assert_eq!(a.record.owned_epe_history, b.record.owned_epe_history);
            assert_eq!(a.record.metrics, b.record.metrics);
        }
        // Every target stitched exactly once across tiles.
        let mut ids: Vec<usize> = one
            .results
            .iter()
            .flat_map(|r| r.record.shapes.iter().filter_map(|s| s.global_id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn f32_schedule_is_deterministic_across_worker_counts() {
        // Same invariant as above, but with the simulation running on the
        // single-precision backend: records must still be byte-identical
        // for any worker count *within* the f32 mode.
        let clip = small_clip();
        let partition = partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 512.0,
                halo: 256.0,
            },
        )
        .unwrap();
        let mut f32_config = config();
        f32_config.precision = cardopc_litho::Precision::F32;
        let flow = CardOpc::new(f32_config);
        let none = HashMap::new();
        let one = run_tiles(&partition, &flow, &WorkerPool::new(1), &none, None, None).unwrap();
        let four = run_tiles(&partition, &flow, &WorkerPool::new(4), &none, None, None).unwrap();
        assert_eq!(one.executed, 4);
        for (a, b) in one.results.iter().zip(&four.results) {
            assert_eq!(a.record.index, b.record.index);
            assert_eq!(a.record.shapes, b.record.shapes, "tile {}", a.record.index);
            assert_eq!(a.record.owned_epe_history, b.record.owned_epe_history);
            assert_eq!(a.record.metrics, b.record.metrics);
        }
    }

    #[test]
    fn checkpoints_skip_matching_tiles_and_budget_limits_execution() {
        let clip = small_clip();
        let partition = partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 512.0,
                halo: 256.0,
            },
        )
        .unwrap();
        let flow = CardOpc::new(config());
        let pool = WorkerPool::new(2);
        let none = HashMap::new();

        // Budgeted run: only 3 of 4 tiles execute.
        let partial = run_tiles(&partition, &flow, &pool, &none, Some(3), None).unwrap();
        assert_eq!(partial.executed, 3);
        assert_eq!(partial.remaining, 1);
        assert_eq!(partial.results.len(), 3);

        // Resume from those records: one tile left to run.
        let ckpts: HashMap<usize, TileRecord> = partial
            .results
            .iter()
            .map(|r| (r.record.index, r.record.clone()))
            .collect();
        let rest = run_tiles(&partition, &flow, &pool, &ckpts, None, None).unwrap();
        assert_eq!(rest.resumed, 3);
        assert_eq!(rest.executed, 1);
        assert_eq!(rest.remaining, 0);
        assert_eq!(rest.results.len(), 4);

        // Stale checkpoints (different config → different hash) re-run.
        let mut other = config();
        other.iterations = 3;
        let flow2 = CardOpc::new(other);
        let rerun = run_tiles(&partition, &flow2, &pool, &ckpts, None, None).unwrap();
        assert_eq!(rerun.resumed, 0);
        assert_eq!(rerun.executed, 4);
    }
}
