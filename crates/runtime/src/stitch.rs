//! Merging per-tile outputs into one full-chip mask.
//!
//! The scheduler already guarantees every shape appears in exactly one
//! tile record (owner-tile mains, core-owned SRAFs), so stitching is a
//! deterministic merge: mains sorted by their source-clip index, SRAFs in
//! tile order. What per-tile optimisation *cannot* see is a mask-rule
//! spacing violation between two shapes corrected by different tiles, so
//! the stitcher finishes with a cross-boundary MRC pass restricted to the
//! seam bands — strips of ± `min_space` around every internal core
//! boundary, the only places a cross-tile pair can violate spacing.

use crate::checkpoint::StitchedShape;
use crate::partition::Partition;
use cardopc_geometry::{BBox, Point};
use cardopc_mrc::{MrcChecker, MrcRules, Violation};
use cardopc_spline::CardinalSpline;

/// The merged full-chip mask.
#[derive(Clone, Debug, Default)]
pub struct Stitched {
    /// Main shapes sorted by source-clip target index.
    pub mains: Vec<StitchedShape>,
    /// SRAFs in tile order.
    pub srafs: Vec<StitchedShape>,
    /// Cross-boundary spacing violations found on the seam bands
    /// (report-only; per-tile MRC already resolved intra-tile issues).
    pub seam_violations: Vec<Violation>,
}

impl Stitched {
    /// Total shape count (mains + SRAFs).
    pub fn len(&self) -> usize {
        self.mains.len() + self.srafs.len()
    }

    /// `true` when the mask has no shapes.
    pub fn is_empty(&self) -> bool {
        self.mains.is_empty() && self.srafs.is_empty()
    }

    /// Rebuilds every stitched shape as a spline (mains first, then
    /// SRAFs). Shapes whose control points no longer form a valid spline
    /// are skipped — they were valid when serialised, so this only loses
    /// shapes on a corrupted checkpoint.
    pub fn splines(&self) -> Vec<CardinalSpline> {
        self.mains
            .iter()
            .chain(&self.srafs)
            .filter_map(|s| CardinalSpline::closed(s.control_points.clone(), s.tension).ok())
            .collect()
    }
}

/// The seam bands of a partition under `rules`: strips of half-width
/// `min_space` around every internal core boundary, spanning the clip.
/// Any spacing violation between shapes owned by different tiles must
/// have both offending contours within `min_space` of a core boundary,
/// hence inside a band.
pub fn seam_bands(partition: &Partition, rules: &MrcRules) -> Vec<BBox> {
    let ts = partition.config.tile_size;
    let s = rules.min_space;
    let w = partition.clip_size.x;
    let h = partition.clip_size.y;
    let mut bands = Vec::with_capacity(partition.nx + partition.ny - 2);
    for tx in 1..partition.nx {
        let x = tx as f64 * ts;
        bands.push(BBox::new(Point::new(x - s, 0.0), Point::new(x + s, h)));
    }
    for ty in 1..partition.ny {
        let y = ty as f64 * ts;
        bands.push(BBox::new(Point::new(0.0, y - s), Point::new(w, y + s)));
    }
    bands
}

/// Merges tile records into the full-chip mask and runs the seam MRC
/// pass.
///
/// `shapes` is every tile's stitched shapes (any order); `rules` enables
/// the cross-boundary spacing check when present.
pub fn stitch(
    partition: &Partition,
    shapes: impl IntoIterator<Item = StitchedShape>,
    rules: Option<&MrcRules>,
) -> Stitched {
    let mut mains = Vec::new();
    let mut srafs = Vec::new();
    for shape in shapes {
        if shape.global_id.is_some() {
            mains.push(shape);
        } else {
            srafs.push(shape);
        }
    }
    mains.sort_by_key(|s| s.global_id);

    let mut out = Stitched {
        mains,
        srafs,
        seam_violations: Vec::new(),
    };
    if let Some(rules) = rules {
        let bands = seam_bands(partition, rules);
        if !bands.is_empty() && !out.is_empty() {
            let checker = MrcChecker::new(*rules);
            out.seam_violations = checker.check_spacing_in_bands(&out.splines(), &bands);
        }
    }
    out
}

/// Incremental stitching: accumulate tile records as they stream in (any
/// order — e.g. from fleet workers finishing out of sequence), then
/// [`finish`](StitchAccumulator::finish) into the same [`Stitched`] a
/// one-shot [`stitch`] over all records would produce. The merge is
/// order-independent up to the final sort, so the result is deterministic
/// for any arrival order.
#[derive(Clone, Debug, Default)]
pub struct StitchAccumulator {
    // Per-tile shape batches. Kept keyed by tile index and sorted at
    // finish time so SRAFs (which [`stitch`] leaves in input order) come
    // out in tile order no matter when each tile's result arrived.
    tiles: Vec<(usize, Vec<StitchedShape>)>,
}

impl StitchAccumulator {
    /// An empty accumulator.
    pub fn new() -> StitchAccumulator {
        StitchAccumulator::default()
    }

    /// Folds one tile record's shapes in. Re-adding a tile index replaces
    /// the earlier batch (records are deterministic, so a duplicate from
    /// a work-steal race carries identical shapes anyway).
    pub fn add_record(&mut self, record: &crate::checkpoint::TileRecord) {
        let shapes = record.shapes.clone();
        match self.tiles.iter_mut().find(|(i, _)| *i == record.index) {
            Some((_, existing)) => *existing = shapes,
            None => self.tiles.push((record.index, shapes)),
        }
    }

    /// Number of shapes accumulated so far.
    pub fn len(&self) -> usize {
        self.tiles.iter().map(|(_, s)| s.len()).sum()
    }

    /// `true` when nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges everything accumulated and runs the seam MRC pass —
    /// equivalent to [`stitch`] over the same records in tile order.
    pub fn finish(mut self, partition: &Partition, rules: Option<&MrcRules>) -> Stitched {
        self.tiles.sort_unstable_by_key(|(i, _)| *i);
        stitch(
            partition,
            self.tiles.into_iter().flat_map(|(_, s)| s),
            rules,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_clip, TilingConfig};
    use cardopc_geometry::Polygon;
    use cardopc_layout::Clip;

    /// Square control polygon with subdivided edges: colinear control
    /// points keep the cardinal spline on the drawn edge (a bare 4-corner
    /// square would bulge outward mid-edge and falsify gap distances).
    fn square(cx: f64, cy: f64, half: f64) -> Vec<Point> {
        let corners = [
            Point::new(cx - half, cy - half),
            Point::new(cx + half, cy - half),
            Point::new(cx + half, cy + half),
            Point::new(cx - half, cy + half),
        ];
        let mut points = Vec::new();
        for i in 0..4 {
            let a = corners[i];
            let b = corners[(i + 1) % 4];
            for k in 0..4 {
                let t = k as f64 / 4.0;
                points.push(Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t));
            }
        }
        points
    }

    fn shape(id: Option<usize>, cx: f64, cy: f64, half: f64) -> StitchedShape {
        StitchedShape {
            global_id: id,
            is_sraf: id.is_none(),
            tension: 0.5,
            control_points: square(cx, cy, half),
        }
    }

    fn partition() -> crate::partition::Partition {
        let clip = Clip::new(
            "stitch-test",
            2000.0,
            1000.0,
            vec![Polygon::rect(
                Point::new(100.0, 100.0),
                Point::new(200.0, 170.0),
            )],
        );
        partition_clip(
            &clip,
            &TilingConfig {
                tile_size: 1000.0,
                halo: 100.0,
            },
        )
        .unwrap()
    }

    #[test]
    fn merge_sorts_mains_and_keeps_srafs() {
        let p = partition();
        let merged = stitch(
            &p,
            vec![
                shape(Some(2), 1500.0, 500.0, 40.0),
                shape(None, 900.0, 500.0, 15.0),
                shape(Some(0), 200.0, 200.0, 40.0),
            ],
            None,
        );
        let ids: Vec<_> = merged.mains.iter().map(|s| s.global_id).collect();
        assert_eq!(ids, vec![Some(0), Some(2)]);
        assert_eq!(merged.srafs.len(), 1);
        assert_eq!(merged.len(), 3);
        assert!(merged.seam_violations.is_empty());
    }

    #[test]
    fn accumulator_matches_one_shot_stitch_for_any_arrival_order() {
        let p = partition();
        let records: Vec<crate::checkpoint::TileRecord> = [
            vec![
                shape(Some(2), 1500.0, 500.0, 40.0),
                shape(None, 300.0, 300.0, 15.0),
            ],
            vec![
                shape(None, 900.0, 500.0, 15.0),
                shape(Some(0), 200.0, 200.0, 40.0),
            ],
        ]
        .into_iter()
        .enumerate()
        .map(|(i, shapes)| crate::checkpoint::TileRecord {
            index: i,
            name: format!("t{i}"),
            input_hash: 0,
            owned_epe_history: vec![],
            epe_history: vec![],
            shapes,
            metrics: Default::default(),
            seconds: 0.0,
        })
        .collect();
        let direct = stitch(
            &p,
            records.iter().flat_map(|r| r.shapes.iter().cloned()),
            None,
        );
        let mut forward = StitchAccumulator::new();
        let mut reverse = StitchAccumulator::new();
        for r in &records {
            forward.add_record(r);
        }
        for r in records.iter().rev() {
            reverse.add_record(r);
        }
        assert_eq!(forward.len(), 4);
        let forward = forward.finish(&p, None);
        let reverse = reverse.finish(&p, None);
        assert_eq!(forward.mains, direct.mains);
        assert_eq!(reverse.mains, direct.mains);
        // SRAFs come out in tile order even for reversed arrival.
        assert_eq!(forward.srafs, direct.srafs);
        assert_eq!(reverse.srafs, direct.srafs);
    }

    #[test]
    fn seam_bands_cover_internal_boundaries_only() {
        let p = partition();
        let rules = MrcRules::opc_node();
        let bands = seam_bands(&p, &rules);
        // 2×1 grid: one vertical seam at x = 1000, no horizontal seams.
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].min, Point::new(1000.0 - rules.min_space, 0.0));
        assert_eq!(bands[0].max, Point::new(1000.0 + rules.min_space, 1000.0));
    }

    #[test]
    fn cross_seam_spacing_violation_detected() {
        let p = partition();
        let rules = MrcRules::opc_node();
        // Two 60 nm squares facing each other across x = 1000, 6 nm apart:
        // well under min_space (18 nm), each owned by a different tile.
        let close = stitch(
            &p,
            vec![
                shape(Some(0), 967.0, 500.0, 30.0),
                shape(Some(1), 1033.0, 500.0, 30.0),
            ],
            Some(&rules),
        );
        assert!(
            !close.seam_violations.is_empty(),
            "6 nm cross-seam gap must violate min_space"
        );
        // Same shapes far from each other: clean.
        let far = stitch(
            &p,
            vec![
                shape(Some(0), 500.0, 500.0, 30.0),
                shape(Some(1), 1500.0, 500.0, 30.0),
            ],
            Some(&rules),
        );
        assert!(far.seam_violations.is_empty());
    }
}
