//! The GDS round-trip determinism contract (ISSUE 10 acceptance):
//!
//! GDS read → correct → GDS write → re-read is geometry-identical to the
//! in-memory run, and the written mask bytes are identical across worker
//! counts, cache cold/warm, and a checkpoint resume.

use cardopc_layout::{
    generated_clip, read_gds_clip, write_clip_gds, Clip, DesignKind, TARGET_LAYER,
};
use cardopc_litho::WorkerPool;
use cardopc_opc::OpcConfig;
use cardopc_runtime::{
    run_clip_controlled, write_mask_gds, CacheConfig, MaskGdsOptions, RunConfig, RunControl,
    TileCache, TilingConfig, MASK_NM_PER_DBU,
};
use std::path::PathBuf;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cardopc-gdsdet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opc() -> OpcConfig {
    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 2;
    opc
}

fn config(run_dir: Option<PathBuf>, max_tiles: Option<usize>) -> RunConfig {
    RunConfig {
        opc: opc(),
        tiling: TilingConfig {
            tile_size: 512.0,
            halo: 256.0,
        },
        run_dir,
        max_tiles,
    }
}

/// Corrects `clip` and serialises the stitched mask; panics when the run
/// was left incomplete (callers resume first).
fn corrected_mask_bytes(clip: &Clip, config: &RunConfig, pool: &WorkerPool) -> Vec<u8> {
    corrected_mask_bytes_controlled(clip, config, pool, &RunControl::default())
}

fn corrected_mask_bytes_controlled(
    clip: &Clip,
    config: &RunConfig,
    pool: &WorkerPool,
    control: &RunControl<'_>,
) -> Vec<u8> {
    let outcome = run_clip_controlled(clip, config, pool, control).unwrap();
    let stitched = outcome.stitched.expect("run completed");
    write_mask_gds(&stitched, clip.name(), &MaskGdsOptions::default()).unwrap()
}

#[test]
fn mask_bytes_are_identical_across_workers_cache_and_resume() {
    let dir = tempdir("matrix");
    let clip = generated_clip(DesignKind::Gcd, 1, Some(1024.0));

    // The design goes through a GDS file once — everything downstream
    // corrects the *re-read* clip, as a real ingestion would.
    let gds_path = dir.join("design.gds");
    std::fs::write(&gds_path, write_clip_gds(&clip, TARGET_LAYER, 0).unwrap()).unwrap();
    let ingested = read_gds_clip(
        &gds_path,
        cardopc_gds::LayerFilter::Layer(TARGET_LAYER),
        None,
    )
    .unwrap();

    let baseline = corrected_mask_bytes(&ingested, &config(None, None), &WorkerPool::new(1));

    // Worker count must not show in the bytes.
    let wide = corrected_mask_bytes(&ingested, &config(None, None), &WorkerPool::new(3));
    assert_eq!(baseline, wide, "worker count changed the mask bytes");

    // Cache cold, then fully warm, against the same store.
    let cache = TileCache::open(&CacheConfig {
        dir: Some(dir.join("cache")),
        ..CacheConfig::default()
    })
    .unwrap();
    let control = RunControl {
        cache: Some(&cache),
        ..RunControl::default()
    };
    let pool = WorkerPool::new(2);
    let cold = corrected_mask_bytes_controlled(&ingested, &config(None, None), &pool, &control);
    let warm = corrected_mask_bytes_controlled(&ingested, &config(None, None), &pool, &control);
    assert_eq!(baseline, cold, "cold cache changed the mask bytes");
    assert_eq!(baseline, warm, "cache replay changed the mask bytes");

    // Interrupt after 2 tiles, then resume from the checkpoint.
    let run_dir = dir.join("resume");
    let partial = run_clip_controlled(
        &ingested,
        &config(Some(run_dir.clone()), Some(2)),
        &pool,
        &RunControl::default(),
    )
    .unwrap();
    assert!(!partial.complete && partial.stitched.is_none());
    let resumed = run_clip_controlled(
        &ingested,
        &config(Some(run_dir), None),
        &pool,
        &RunControl::default(),
    )
    .unwrap();
    assert!(resumed.manifest.resumed > 0, "resume skipped nothing");
    let resumed_mask = write_mask_gds(
        &resumed.stitched.unwrap(),
        ingested.name(),
        &MaskGdsOptions::default(),
    )
    .unwrap();
    assert_eq!(baseline, resumed_mask, "resume changed the mask bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gds_ingestion_is_geometry_identical_to_the_in_memory_run() {
    let dir = tempdir("geom");
    let clip = generated_clip(DesignKind::Gcd, 1, Some(1024.0));
    let gds_path = dir.join("design.gds");
    std::fs::write(&gds_path, write_clip_gds(&clip, TARGET_LAYER, 0).unwrap()).unwrap();
    let ingested = read_gds_clip(
        &gds_path,
        cardopc_gds::LayerFilter::Layer(TARGET_LAYER),
        None,
    )
    .unwrap();

    // The generator snaps to integer nm, so the 1 nm/dbu GDS grid is
    // exact and the clips agree to the bit — as do their corrections.
    assert_eq!(clip.name(), ingested.name());
    assert_eq!(clip.targets().len(), ingested.targets().len());
    let pool = WorkerPool::new(2);
    let direct = corrected_mask_bytes(&clip, &config(None, None), &pool);
    let through_gds = corrected_mask_bytes(&ingested, &config(None, None), &pool);
    assert_eq!(direct, through_gds, "GDS ingestion changed the correction");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn written_mask_re_reads_to_the_stitched_geometry() {
    let dir = tempdir("reread");
    let clip = generated_clip(DesignKind::Gcd, 1, Some(1024.0));
    let outcome = run_clip_controlled(
        &clip,
        &config(None, None),
        &WorkerPool::new(2),
        &RunControl::default(),
    )
    .unwrap();
    let stitched = outcome.stitched.unwrap();
    let options = MaskGdsOptions::default();
    let bytes = write_mask_gds(&stitched, clip.name(), &options).unwrap();

    let lib = cardopc_gds::parse_lib(&bytes).unwrap();
    assert_eq!(lib.nm_per_dbu(), MASK_NM_PER_DBU);
    let mains = cardopc_gds::flatten(
        &lib,
        clip.name(),
        cardopc_gds::LayerFilter::Layer(2),
        cardopc_gds::FlattenLimits::default(),
    )
    .unwrap();
    assert_eq!(mains.len(), stitched.mains.len());

    // Each re-read polygon matches its source spline's sampled contour
    // to within half a mask database unit (0.005 nm).
    for (shape, flat) in stitched.mains.iter().zip(mains.iter()) {
        let spline =
            cardopc_spline::CardinalSpline::closed(shape.control_points.clone(), shape.tension)
                .unwrap();
        let sampled = spline.to_polygon(options.samples_per_segment);
        let got = flat.polygon.vertices();
        assert_eq!(got.len(), sampled.vertices().len());
        for (a, b) in got.iter().zip(sampled.vertices()) {
            assert!((a.x - b.x).abs() <= 0.005 && (a.y - b.y).abs() <= 0.005);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
