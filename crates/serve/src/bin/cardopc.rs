//! `cardopc` — command-line tiled full-chip OPC runner and HTTP service.
//!
//! **Run mode** (the default) corrects a (synthetic) large-scale design
//! through the tiled runtime: partition into halo tiles, correct tiles
//! over the worker pool, checkpoint each finished tile, stitch, and
//! report a run manifest.
//!
//! ```text
//! cargo run --release -p cardopc-serve --bin cardopc -- \
//!     --design gcd --quick --run-dir out/gcd-quick
//! ```
//!
//! Interrupted runs (Ctrl-C, crash, or a deliberate `--max-tiles` budget)
//! resume from the run directory: tiles whose checkpoint records still
//! match their input hash are skipped.
//!
//! **Serve mode** starts the HTTP correction service and blocks until a
//! `POST /admin/drain` finishes the in-flight work:
//!
//! ```text
//! cargo run --release -p cardopc-serve --bin cardopc -- \
//!     serve --addr 127.0.0.1:8650 --run-root runs
//! ```
//!
//! **Worker mode** starts a fleet worker process that corrects tiles
//! dispatched by a coordinator (`--workers-local` / `--worker-addr` run
//! flags, or a serve-mode registry):
//!
//! ```text
//! cargo run --release -p cardopc-serve --bin cardopc -- \
//!     worker --addr 127.0.0.1:9100
//! ```
//!
//! Worker-thread precedence (run/serve modes): `--threads` beats
//! `--workers` (run-mode legacy alias), which beats the `CARDOPC_THREADS`
//! environment variable, which beats the auto-detected CPU count.

use cardopc_fleet::spec::DesignSpec;
use cardopc_fleet::worker::{WorkerConfig, WorkerServer};
use cardopc_fleet::{client, run_fleet, FleetConfig, WorkSpec};
use cardopc_layout::{write_clip_gds, DesignKind, LayerFilter, TARGET_LAYER};
use cardopc_litho::{Precision, WorkerPool};
use cardopc_opc::OpcConfig;
use cardopc_runtime::{
    run_clip_controlled, write_mask_gds, CacheConfig, MaskGdsOptions, RunConfig, RunControl,
    Stitched, TileCache, TilingConfig,
};
use cardopc_serve::{ServeConfig, Server};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
cardopc — tiled full-chip curvilinear OPC runner and HTTP service

USAGE:
    cardopc [OPTIONS]            correct a design and exit
    cardopc serve [OPTIONS]      run the HTTP correction service
    cardopc worker [OPTIONS]     run a fleet worker process

RUN OPTIONS:
    --design <NAME|FILE.gds>        design to correct: a synthetic design
                                    (gcd|aes|dynamicnode) or a GDSII file
                                    path (anything ending in .gds) [gcd]
    --layer <N[:D]>                 target layer[:datatype] of a GDS
                                    design; '*' selects every layer [1]
    --design-tiles <N>              concatenate N 30x30 um design tiles
                                    (synthetic designs only) [1]
    --crop <NM>                     crop a centred NM x NM window first
    --write-target-gds <FILE>       export the input design (pre-OPC) as
                                    GDSII at 1 nm/dbu, then run
    --out-gds <FILE>                write the corrected curvilinear mask
                                    as GDSII at 0.01 nm/dbu
    --mask-layer <N>                mask GDS layer for corrected mains [2]
    --sraf-layer <N>                mask GDS layer for SRAFs [3]
    --tile <NM>                     core tile size [4096]
    --halo <NM>                     halo margin per side [1024]
    --pitch <NM>                    simulation pixel pitch [8]
    --precision <f64|f32>           simulation arithmetic; f32 runs the
                                    8-lane SIMD backend (geometry, MRC and
                                    fitting stay f64) [f64]
    --iterations <N>                OPC iterations [10]
    --threads <N>                   worker pool size (beats --workers and
                                    CARDOPC_THREADS)
    --workers <N>                   legacy alias for --threads
    --run-dir <PATH>                checkpoint + manifest directory
    --max-tiles <N>                 execute at most N tiles, then stop
    --cache-dir <PATH>              persistent content-addressed tile cache;
                                    congruent tiles (this run or any later
                                    one) replay instead of re-correcting
    --no-cache                      disable the tile cache entirely
                                    (default: in-memory, this run only)
    --quick                         small smoke preset: gcd, 2048 nm crop,
                                    1024 nm tiles, 512 nm halo, 4 iterations
    --workers-local <N>             shard across N spawned worker processes
                                    (fleet mode)
    --worker-addr <HOST:PORT>       shard across an already-running
                                    `cardopc worker` (repeatable; combines
                                    with --workers-local)
    --lease-secs <S>                fleet per-tile lease timeout [120]
    --steal-secs <S>                fleet steal threshold: idle workers
                                    duplicate-dispatch tiles leased longer
                                    than this [20]
    --help                          print this help
    --version                       print the version and exit

WORKER OPTIONS:
    --addr <HOST:PORT>              bind address [127.0.0.1:0]; port 0
                                    picks an ephemeral port
    --run-dir <PATH>                worker checkpoint directory (lets a
                                    coordinator restart recover finished
                                    tiles from this worker)
    --no-cache                      disable the worker's in-memory tile
                                    cache

SERVE OPTIONS:
    --addr <HOST:PORT>              bind address [127.0.0.1:8650]; port 0
                                    picks an ephemeral port
    --max-queued <N>                queued-job bound; beyond it submissions
                                    get 429 + Retry-After [16]
    --max-inflight <N>              concurrent jobs [1]
    --retain-terminal <N>           finished jobs kept queryable; older
                                    ones are evicted [256]
    --threads <N>                   worker pool size (beats CARDOPC_THREADS)
    --run-root <PATH>               directory for job run_dir names [runs]
    --cache-dir <PATH>              persist the cross-job tile cache here
                                    (default: in-memory, per server)
    --no-cache                      disable the cross-job tile cache

THREADS:
    --threads > --workers > CARDOPC_THREADS > auto-detected CPUs
";

/// What `--design` named: a synthetic generator or a GDSII file path.
enum DesignChoice {
    Kind(DesignKind),
    Gds(PathBuf),
}

/// Prints help or the version when `flag` asks for one; the caller exits
/// 0 (success: the user got exactly what they asked for).
fn info_flag(flag: &str) -> bool {
    match flag {
        "--help" | "-h" => {
            println!("{USAGE}");
            true
        }
        "--version" => {
            println!("cardopc {}", env!("CARGO_PKG_VERSION"));
            true
        }
        _ => false,
    }
}

struct RunArgs {
    design: DesignChoice,
    layer: Option<LayerFilter>,
    design_tiles: usize,
    crop: Option<f64>,
    out_gds: Option<PathBuf>,
    write_target_gds: Option<PathBuf>,
    mask_layer: i16,
    sraf_layer: i16,
    tile: f64,
    halo: f64,
    pitch: f64,
    precision: Precision,
    iterations: usize,
    threads: Option<usize>,
    workers: Option<usize>,
    run_dir: Option<String>,
    max_tiles: Option<usize>,
    cache_dir: Option<String>,
    no_cache: bool,
    workers_local: usize,
    worker_addrs: Vec<std::net::SocketAddr>,
    lease_secs: f64,
    steal_secs: f64,
}

impl RunArgs {
    /// `Ok(None)` means an informational flag (`--help`, `--version`)
    /// was handled and the process should exit successfully.
    fn parse(it: &mut std::vec::IntoIter<String>) -> Result<Option<RunArgs>, String> {
        let mut args = RunArgs {
            design: DesignChoice::Kind(DesignKind::Gcd),
            layer: None,
            design_tiles: 1,
            crop: None,
            out_gds: None,
            write_target_gds: None,
            mask_layer: cardopc_runtime::gdsout::DEFAULT_MASK_LAYER,
            sraf_layer: cardopc_runtime::gdsout::DEFAULT_SRAF_LAYER,
            tile: 4096.0,
            halo: 1024.0,
            pitch: 8.0,
            precision: Precision::F64,
            iterations: 10,
            threads: None,
            workers: None,
            run_dir: None,
            max_tiles: None,
            cache_dir: None,
            no_cache: false,
            workers_local: 0,
            worker_addrs: Vec::new(),
            lease_secs: 120.0,
            steal_secs: 20.0,
        };
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--design" => {
                    let raw = value()?;
                    args.design = match raw.as_str() {
                        "gcd" => DesignChoice::Kind(DesignKind::Gcd),
                        "aes" => DesignChoice::Kind(DesignKind::Aes),
                        "dynamicnode" => DesignChoice::Kind(DesignKind::DynamicNode),
                        p if p.to_ascii_lowercase().ends_with(".gds") => {
                            DesignChoice::Gds(PathBuf::from(p))
                        }
                        other => {
                            return Err(format!(
                                "unknown design '{other}' \
                                 (expected gcd|aes|dynamicnode or a .gds file path)"
                            ))
                        }
                    };
                }
                "--layer" => {
                    let raw = value()?;
                    args.layer = Some(
                        LayerFilter::parse(&raw)
                            .map_err(|e| format!("--layer: cannot parse '{raw}': {e}"))?,
                    );
                }
                "--design-tiles" => args.design_tiles = parse_num(&flag, &value()?)?,
                "--crop" => args.crop = Some(parse_num(&flag, &value()?)?),
                "--out-gds" => args.out_gds = Some(value()?.into()),
                "--write-target-gds" => args.write_target_gds = Some(value()?.into()),
                "--mask-layer" => args.mask_layer = parse_num(&flag, &value()?)?,
                "--sraf-layer" => args.sraf_layer = parse_num(&flag, &value()?)?,
                "--tile" => args.tile = parse_num(&flag, &value()?)?,
                "--halo" => args.halo = parse_num(&flag, &value()?)?,
                "--pitch" => args.pitch = parse_num(&flag, &value()?)?,
                "--precision" => {
                    let raw = value()?;
                    args.precision = Precision::parse(&raw).ok_or_else(|| {
                        format!("--precision: expected 'f64' or 'f32', got '{raw}'\n\n{USAGE}")
                    })?;
                }
                "--iterations" => args.iterations = parse_num(&flag, &value()?)?,
                "--threads" => args.threads = Some(parse_num(&flag, &value()?)?),
                "--workers" => args.workers = Some(parse_num(&flag, &value()?)?),
                "--run-dir" => args.run_dir = Some(value()?),
                "--max-tiles" => args.max_tiles = Some(parse_num(&flag, &value()?)?),
                "--cache-dir" => args.cache_dir = Some(value()?),
                "--no-cache" => args.no_cache = true,
                "--workers-local" => args.workers_local = parse_num(&flag, &value()?)?,
                "--worker-addr" => {
                    let raw = value()?;
                    args.worker_addrs.push(
                        raw.parse()
                            .map_err(|_| format!("--worker-addr: cannot parse '{raw}'"))?,
                    );
                }
                "--lease-secs" => args.lease_secs = parse_num(&flag, &value()?)?,
                "--steal-secs" => args.steal_secs = parse_num(&flag, &value()?)?,
                "--quick" => {
                    args.design = DesignChoice::Kind(DesignKind::Gcd);
                    args.design_tiles = 1;
                    args.crop = Some(2048.0);
                    args.tile = 1024.0;
                    args.halo = 512.0;
                    args.pitch = 8.0;
                    args.iterations = 4;
                }
                other => {
                    if info_flag(other) {
                        return Ok(None);
                    }
                    return Err(format!("unknown flag '{other}'\n\n{USAGE}"));
                }
            }
        }
        Ok(Some(args))
    }

    /// The design recipe these flags describe, validated for
    /// kind-specific flags used with the wrong kind.
    fn design_spec(&self) -> Result<DesignSpec, String> {
        match &self.design {
            DesignChoice::Kind(kind) => {
                if self.layer.is_some() {
                    return Err("--layer applies to GDS designs; synthetic designs always \
                         target layer 1"
                        .into());
                }
                Ok(DesignSpec::generated(*kind, self.design_tiles, self.crop))
            }
            DesignChoice::Gds(path) => {
                if self.design_tiles != 1 {
                    return Err("--design-tiles applies to synthetic designs only".into());
                }
                let layer = self.layer.unwrap_or(LayerFilter::Layer(TARGET_LAYER));
                Ok(DesignSpec::gds(path.clone(), layer, self.crop))
            }
        }
    }
}

struct ServeArgs {
    config: ServeConfig,
}

impl ServeArgs {
    /// `Ok(None)` means an informational flag (`--help`, `--version`)
    /// was handled and the process should exit successfully.
    fn parse(it: &mut std::vec::IntoIter<String>) -> Result<Option<ServeArgs>, String> {
        let mut config = ServeConfig::default();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("{flag} expects a value\n\n{USAGE}"))
            };
            match flag.as_str() {
                "--addr" => config.addr = value()?,
                "--max-queued" => config.max_queued = parse_num(&flag, &value()?)?,
                "--max-inflight" => config.max_inflight = parse_num(&flag, &value()?)?,
                "--retain-terminal" => config.retain_terminal = parse_num(&flag, &value()?)?,
                "--threads" => config.threads = Some(parse_num(&flag, &value()?)?),
                "--run-root" => config.run_root = value()?.into(),
                "--cache-dir" => config.cache_dir = Some(value()?.into()),
                "--no-cache" => config.cache = false,
                other => {
                    if info_flag(other) {
                        return Ok(None);
                    }
                    return Err(format!("unknown flag '{other}'\n\n{USAGE}"));
                }
            }
        }
        Ok(Some(ServeArgs { config }))
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse '{raw}'"))
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    match it.as_slice().first().map(String::as_str) {
        Some("serve") => {
            let _ = it.next();
            serve_main(&mut it)
        }
        Some("worker") => {
            let _ = it.next();
            worker_main(&mut it)
        }
        _ => run_main(&mut it),
    }
}

/// Worker mode: serve tile dispatches until a `POST /admin/shutdown`.
fn worker_main(it: &mut std::vec::IntoIter<String>) -> ExitCode {
    let mut config = WorkerConfig::default();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n\n{USAGE}"))
        };
        let result = match flag.as_str() {
            "--addr" => value().map(|v| config.addr = v),
            "--run-dir" => value().map(|v| config.run_dir = Some(v.into())),
            "--no-cache" => {
                config.cache = false;
                Ok(())
            }
            other => {
                if info_flag(other) {
                    return ExitCode::SUCCESS;
                }
                Err(format!("unknown flag '{other}'\n\n{USAGE}"))
            }
        };
        if let Err(msg) = result {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let worker = match WorkerServer::start(config) {
        Ok(worker) => worker,
        Err(e) => {
            eprintln!("cardopc worker: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-readable: coordinators spawning local workers on port 0
    // scrape the bound address from this line.
    println!("cardopc-worker listening on {}", worker.local_addr());
    eprintln!("cardopc worker: POST /admin/shutdown to stop");
    worker.wait_shutdown();
    eprintln!("cardopc worker: stopped");
    ExitCode::SUCCESS
}

/// Serve mode: start the service, print the bound address, block until a
/// drain completes, exit 0.
fn serve_main(it: &mut std::vec::IntoIter<String>) -> ExitCode {
    let args = match ServeArgs::parse(it) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let threads = args
        .config
        .threads
        .unwrap_or_else(WorkerPool::configured_parallelism);
    let mut server = match Server::start(args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cardopc serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The address line is machine-readable: CI starts the server on port
    // 0 and scrapes the port from here.
    println!("cardopc-serve listening on {}", server.local_addr());
    eprintln!("cardopc serve: {threads} workers; POST /admin/drain to stop");
    server.wait_drained();
    server.shutdown();
    eprintln!("cardopc serve: drained, exiting");
    ExitCode::SUCCESS
}

/// A spawned local worker process; shut down (politely, then by force)
/// on drop so an aborted coordinator does not leak children.
struct LocalWorker {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl Drop for LocalWorker {
    fn drop(&mut self) {
        let _ = client::request_with_timeout(
            self.addr,
            "POST",
            "/admin/shutdown",
            Some("{}"),
            Duration::from_secs(2),
        );
        // Give the polite path a moment, then make sure.
        for _ in 0..20 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one `cardopc worker` child on an ephemeral port and scrapes
/// its bound address from the announce line.
fn spawn_local_worker() -> Result<LocalWorker, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .args(["worker", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn worker: {e}"))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut line = String::new();
    if let Err(e) = std::io::BufReader::new(stdout).read_line(&mut line) {
        let _ = child.kill();
        return Err(format!("cannot read worker announce line: {e}"));
    }
    let Some(addr) = line
        .trim()
        .strip_prefix("cardopc-worker listening on ")
        .and_then(|a| a.parse().ok())
    else {
        let _ = child.kill();
        return Err(format!("unexpected worker announce line: {line:?}"));
    };
    Ok(LocalWorker { child, addr })
}

/// `fs::write` with the parent directory created first (CLI outputs may
/// name not-yet-existing directories, e.g. a shared `--run-dir` tree).
fn write_creating_parents(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Writes the pre-OPC target clip as GDSII (1 nm/dbu, target layer).
fn export_target_gds(clip: &cardopc_layout::Clip, path: &std::path::Path) -> Result<(), String> {
    let bytes = write_clip_gds(clip, TARGET_LAYER, 0)?;
    write_creating_parents(path, &bytes)?;
    eprintln!(
        "cardopc: wrote target GDS {} ({} bytes)",
        path.display(),
        bytes.len()
    );
    Ok(())
}

/// Writes the corrected curvilinear mask as GDSII when `--out-gds` was
/// given. An incomplete run has no stitched mask; the caller asked for a
/// file, so that is an error rather than a silent skip.
fn export_mask_gds(
    stitched: Option<&Stitched>,
    name: &str,
    args: &RunArgs,
    opc: &OpcConfig,
) -> Result<(), String> {
    let Some(path) = &args.out_gds else {
        return Ok(());
    };
    let Some(stitched) = stitched else {
        return Err(format!(
            "--out-gds {}: run incomplete, no stitched mask to export; \
             re-run with the same --run-dir (without --max-tiles) to finish",
            path.display()
        ));
    };
    let options = MaskGdsOptions {
        mask_layer: args.mask_layer,
        sraf_layer: args.sraf_layer,
        samples_per_segment: opc.samples_per_segment,
    };
    let bytes = write_mask_gds(stitched, name, &options).map_err(|e| e.to_string())?;
    write_creating_parents(path, &bytes)?;
    eprintln!(
        "cardopc: wrote mask GDS {} ({} bytes, mains on {}:0, srafs on {}:0)",
        path.display(),
        bytes.len(),
        args.mask_layer,
        args.sraf_layer
    );
    Ok(())
}

/// Fleet mode: shard the run across worker processes (spawned locally
/// and/or already running remotely) and print the same manifest a
/// single-process run would.
fn fleet_main(args: &RunArgs, design: DesignSpec, mask_name: &str, opc: OpcConfig) -> ExitCode {
    let mut locals = Vec::new();
    for _ in 0..args.workers_local {
        match spawn_local_worker() {
            Ok(worker) => locals.push(worker),
            Err(msg) => {
                eprintln!("cardopc: error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    let workers: Vec<std::net::SocketAddr> = locals
        .iter()
        .map(|w| w.addr)
        .chain(args.worker_addrs.iter().copied())
        .collect();

    let spec = WorkSpec {
        design,
        tiling: TilingConfig {
            tile_size: args.tile,
            halo: args.halo,
        },
        opc,
    };
    let config = FleetConfig {
        workers,
        lease: Duration::from_secs_f64(args.lease_secs.max(0.1)),
        steal_after: Duration::from_secs_f64(args.steal_secs.max(0.1)),
        run_dir: args.run_dir.as_ref().map(Into::into),
        max_tiles: args.max_tiles,
        ..FleetConfig::default()
    };
    eprintln!(
        "cardopc: fleet of {} workers ({} spawned local), lease {:.0}s, steal after {:.0}s",
        config.workers.len(),
        locals.len(),
        config.lease.as_secs_f64(),
        config.steal_after.as_secs_f64(),
    );

    let outcome = match run_fleet(&spec, &config, &RunControl::default()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cardopc: error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(msg) = export_mask_gds(outcome.stitched.as_ref(), mask_name, args, &spec.opc) {
        eprintln!("cardopc: error: {msg}");
        return ExitCode::FAILURE;
    }

    print!("{}", outcome.manifest.render_table());
    println!(
        "executed {} resumed {} remaining {}",
        outcome.manifest.executed, outcome.manifest.resumed, outcome.manifest.remaining
    );
    let stats = outcome.stats;
    println!(
        "fleet dispatched {} stolen {} duplicates {} redispatched {} retired {} recovered {}",
        stats.dispatched,
        stats.stolen,
        stats.duplicates,
        stats.redispatched,
        stats.retired_workers,
        stats.recovered
    );
    if let Some(dir) = &config.run_dir {
        if outcome.complete {
            println!("manifest: {}", dir.join("manifest.json").display());
        } else {
            println!(
                "partial run ({} tiles left): re-run with the same --run-dir to resume",
                outcome.manifest.remaining
            );
        }
    }
    ExitCode::SUCCESS
}

/// Run mode: one correction, manifest to stdout.
fn run_main(it: &mut std::vec::IntoIter<String>) -> ExitCode {
    let args = match RunArgs::parse(it) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let design = match args.design_spec() {
        Ok(design) => design,
        Err(msg) => {
            eprintln!("cardopc: error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let clip = match design.build_clip() {
        Ok(clip) => clip,
        Err(e) => {
            eprintln!("cardopc: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.write_target_gds {
        if let Err(msg) = export_target_gds(&clip, path) {
            eprintln!("cardopc: error: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let mut opc = OpcConfig::large_scale();
    opc.pitch = args.pitch;
    opc.precision = args.precision;
    opc.iterations = args.iterations;

    if args.workers_local > 0 || !args.worker_addrs.is_empty() {
        let name = clip.name().to_string();
        return fleet_main(&args, design, &name, opc);
    }

    let config = RunConfig {
        opc,
        tiling: TilingConfig {
            tile_size: args.tile,
            halo: args.halo,
        },
        run_dir: args.run_dir.as_ref().map(Into::into),
        max_tiles: args.max_tiles,
    };

    let local_pool;
    // --threads beats --workers beats CARDOPC_THREADS (inside global()).
    let pool = match args.threads.or(args.workers) {
        Some(n) => {
            local_pool = WorkerPool::new(n.max(1));
            &local_pool
        }
        None => WorkerPool::global(),
    };

    eprintln!(
        "cardopc: {} ({} targets), tile {} nm + halo {} nm, pitch {} nm, {} sim, {} workers",
        clip.name(),
        clip.targets().len(),
        args.tile,
        args.halo,
        args.pitch,
        args.precision.name(),
        pool.parallelism()
    );

    // Tile cache: --no-cache disables it, --cache-dir persists it across
    // runs; the default is an in-memory cache scoped to this run (so a
    // repeated-cell design still collapses to its unique tile patterns).
    let cache = if args.no_cache {
        None
    } else {
        let cache_config = CacheConfig {
            dir: args.cache_dir.as_ref().map(Into::into),
            ..CacheConfig::default()
        };
        match TileCache::open(&cache_config) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("cardopc: error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let control = RunControl {
        cache: cache.as_ref(),
        ..RunControl::default()
    };

    let outcome = match run_clip_controlled(&clip, &config, pool, &control) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("cardopc: error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(msg) = export_mask_gds(outcome.stitched.as_ref(), clip.name(), &args, &config.opc) {
        eprintln!("cardopc: error: {msg}");
        return ExitCode::FAILURE;
    }

    print!("{}", outcome.manifest.render_table());
    println!(
        "executed {} resumed {} remaining {}",
        outcome.manifest.executed, outcome.manifest.resumed, outcome.manifest.remaining
    );
    if cache.is_some() {
        println!(
            "cache hits {} misses {}",
            outcome.manifest.cache_hits, outcome.manifest.cache_misses
        );
    }
    if let Some(dir) = &config.run_dir {
        if outcome.complete {
            println!("manifest: {}", dir.join("manifest.json").display());
        } else {
            println!(
                "partial run ({} tiles left): re-run with the same --run-dir to resume",
                outcome.manifest.remaining
            );
        }
    }
    ExitCode::SUCCESS
}
