//! The server's worker registry: which fleet workers (if any) jobs are
//! sharded across.
//!
//! Two registration flavours, both via `POST /v1/workers`:
//!
//! - **spawn-local** (`{"spawn_local": N}`): N in-process
//!   [`WorkerServer`]s on ephemeral loopback ports — one command turns a
//!   single server into a fleet (useful for many-core boxes, where
//!   process-level sharding isolates per-worker engine caches, and for
//!   tests).
//! - **connect-remote** (`{"addr": "host:port"}`): an already-running
//!   `cardopc worker` process anywhere reachable; registration probes
//!   `/healthz` first so a typo'd address is a 400 now rather than a
//!   retired worker later.
//!
//! While the registry is non-empty, executor threads route jobs through
//! [`cardopc_fleet::run_fleet`] instead of the in-process runtime; an
//! empty registry is the plain single-process service.

use crate::metrics::Metrics;
use cardopc_fleet::client;
use cardopc_fleet::worker::{WorkerConfig, WorkerServer};
use cardopc_json::Json;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a registration probe waits for a remote worker's `/healthz`.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// Registered fleet workers (spawn-local servers plus remote addresses).
pub struct WorkerRegistry {
    inner: Mutex<Inner>,
    metrics: Arc<Metrics>,
}

struct Inner {
    /// In-process workers owned (and shut down) by this registry.
    locals: Vec<WorkerServer>,
    /// External `cardopc worker` processes.
    remotes: Vec<SocketAddr>,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new(metrics: Arc<Metrics>) -> WorkerRegistry {
        WorkerRegistry {
            inner: Mutex::new(Inner {
                locals: Vec::new(),
                remotes: Vec::new(),
            }),
            metrics,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn note_size(&self, inner: &Inner) {
        self.metrics
            .fleet_workers
            .set((inner.locals.len() + inner.remotes.len()) as u64);
    }

    /// Spawns `count` in-process workers on ephemeral loopback ports and
    /// returns their addresses.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures (already-spawned workers of the same call are
    /// kept).
    pub fn spawn_local(&self, count: usize) -> std::io::Result<Vec<SocketAddr>> {
        let mut added = Vec::with_capacity(count);
        let mut inner = self.lock();
        for _ in 0..count {
            let worker = WorkerServer::start(WorkerConfig::default())?;
            added.push(worker.local_addr());
            inner.locals.push(worker);
            self.note_size(&inner);
        }
        Ok(added)
    }

    /// Registers a remote worker after probing its `/healthz`.
    ///
    /// # Errors
    ///
    /// A message when the worker is unreachable or unhealthy (the caller
    /// answers 400 with it). Re-registering a known address is an
    /// idempotent success.
    pub fn connect(&self, addr: SocketAddr) -> Result<(), String> {
        let response = client::request_with_timeout(addr, "GET", "/healthz", None, PROBE_TIMEOUT)
            .map_err(|e| format!("worker at {addr} is unreachable: {e}"))?;
        if response.status != 200 {
            return Err(format!(
                "worker at {addr} answered {} to the health probe",
                response.status
            ));
        }
        let mut inner = self.lock();
        if !inner.remotes.contains(&addr) {
            inner.remotes.push(addr);
        }
        self.note_size(&inner);
        Ok(())
    }

    /// Every registered worker address (spawn-local first, then remote);
    /// empty means jobs run in-process.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        let inner = self.lock();
        inner
            .locals
            .iter()
            .map(WorkerServer::local_addr)
            .chain(inner.remotes.iter().copied())
            .collect()
    }

    /// The `GET /v1/workers` document: each worker's address, kind, and a
    /// live health-probe verdict.
    pub fn document(&self) -> String {
        let entries: Vec<(SocketAddr, &'static str)> = {
            let inner = self.lock();
            inner
                .locals
                .iter()
                .map(|w| (w.local_addr(), "local"))
                .chain(inner.remotes.iter().map(|&a| (a, "remote")))
                .collect()
        };
        // Probe outside the lock: a dead remote costs a timeout, and the
        // registry must stay usable meanwhile.
        let workers = entries
            .into_iter()
            .map(|(addr, kind)| {
                let healthy =
                    client::request_with_timeout(addr, "GET", "/healthz", None, PROBE_TIMEOUT)
                        .map(|r| r.status == 200)
                        .unwrap_or(false);
                Json::obj(vec![
                    ("addr", Json::Str(addr.to_string())),
                    ("kind", Json::Str(kind.to_string())),
                    ("healthy", Json::Bool(healthy)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("count", Json::num_usize(workers.len())),
            ("workers", Json::Arr(workers)),
        ])
        .to_string_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_local_registers_and_reports() {
        let registry = WorkerRegistry::new(Arc::new(Metrics::default()));
        assert!(registry.addrs().is_empty());
        let added = registry.spawn_local(2).unwrap();
        assert_eq!(added.len(), 2);
        assert_eq!(registry.addrs(), added);
        assert_eq!(registry.metrics.fleet_workers.get(), 2);
        let doc = registry.document();
        assert!(doc.contains("\"count\":2"), "{doc}");
        assert!(doc.contains("\"healthy\":true"), "{doc}");
        // A spawn-local worker is also connectable as a "remote" (probe
        // passes), and re-registering is idempotent.
        registry.connect(added[0]).unwrap();
        registry.connect(added[0]).unwrap();
        assert_eq!(registry.addrs().len(), 3);
    }

    #[test]
    fn connect_rejects_unreachable_addresses() {
        let registry = WorkerRegistry::new(Arc::new(Metrics::default()));
        // A bound-then-dropped listener's port refuses connections.
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let err = registry.connect(addr).unwrap_err();
        assert!(err.contains("unreachable"), "{err}");
        assert!(registry.addrs().is_empty());
    }
}
