//! Job lifecycle: bounded admission, queued→running→terminal state
//! machine, and the executor threads that drive the runtime.
//!
//! The store is one mutex + condvar. Admission (`submit`) is O(1) and
//! rejects — never blocks — when the queue is full or the server is
//! draining; correction work happens on dedicated executor threads (one
//! per `max_inflight` slot) that share the process-wide
//! [`WorkerPool`](cardopc_litho::WorkerPool) and a cross-job
//! [`EngineCache`]. Because each tile's correction is a pure function of
//! its input and results are merged in tile order, jobs running
//! concurrently produce byte-identical manifests to jobs run alone.
//!
//! Retention is bounded too: only the newest `retain_terminal` finished
//! jobs (and their result documents) are kept — older ones are evicted,
//! and clients can free a result early with `DELETE /v1/jobs/{id}`.

use crate::fleet::WorkerRegistry;
use crate::metrics::Metrics;
use crate::wire::JobSpec;
use cardopc_fleet::{run_fleet, FleetConfig, FleetError};
use cardopc_json::Json;
use cardopc_litho::WorkerPool;
use cardopc_runtime::{
    run_clip_controlled, EngineCache, RunControl, RunHandle, RunOutcome, TileCache,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Which worker pool the executors correct tiles on.
#[derive(Clone)]
pub enum PoolRef {
    /// The process-global pool (sized by `CARDOPC_THREADS`).
    Global,
    /// A pool owned by this server (the `threads` config override).
    Owned(Arc<WorkerPool>),
}

impl PoolRef {
    /// The underlying pool.
    pub fn get(&self) -> &WorkerPool {
        match self {
            PoolRef::Global => WorkerPool::global(),
            PoolRef::Owned(pool) => pool,
        }
    }
}

/// Job lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for an executor slot.
    Queued,
    /// An executor is correcting tiles.
    Running,
    /// Finished; the result is available.
    Done,
    /// The runtime returned an error (or panicked).
    Failed,
    /// Cancelled while queued, or cancelled mid-run (checkpointed tiles
    /// remain; resubmitting with the same `run_dir` resumes).
    Cancelled,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Per-tile progress, mirrored from the runtime's checkpoint stream.
#[derive(Clone, Copy, Debug, Default)]
struct Progress {
    completed: usize,
    total: usize,
    resumed: usize,
    cache_hits: usize,
    cache_misses: usize,
}

struct Job {
    state: JobState,
    /// Consumed when the job starts running.
    spec: Option<JobSpec>,
    run_dir_name: Option<String>,
    handle: RunHandle,
    progress: Progress,
    error: Option<String>,
    /// Full result document, set when the job reaches `Done`.
    result: Option<Json>,
    submitted: Instant,
}

struct Inner {
    jobs: HashMap<String, Job>,
    /// FIFO of queued job ids (entries may point at jobs cancelled while
    /// queued; executors skip those).
    queue: std::collections::VecDeque<String>,
    /// Terminal job ids, oldest first. Bounds retention: once more than
    /// `retain_terminal` jobs are terminal, the oldest are evicted from
    /// `jobs` so a long-lived server's memory does not grow with every
    /// job it has ever served (result documents hold full contour sets).
    terminal: std::collections::VecDeque<String>,
    next_id: u64,
    draining: bool,
    shutdown: bool,
}

impl Inner {
    /// Records `id` as terminal and evicts beyond the retention cap.
    fn note_terminal(&mut self, id: &str, retain: usize, metrics: &Metrics) {
        self.terminal.push_back(id.to_string());
        while self.terminal.len() > retain {
            if let Some(old) = self.terminal.pop_front() {
                if self.jobs.remove(&old).is_some() {
                    metrics.jobs_evicted.inc();
                }
            }
        }
    }
}

/// Admission failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the client should retry later (429).
    Full,
    /// The server is draining and admits nothing new (503).
    Draining,
}

/// Result of a `GET .../result` lookup.
pub enum ResultLookup {
    /// No such job (404).
    NotFound,
    /// The job is not `Done`; the carried state explains why, and a
    /// failed job also carries its error detail (409).
    NotReady(JobState, Option<String>),
    /// The serialised result document (200).
    Ready(String),
}

/// Result of a `DELETE /v1/jobs/{id}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// No such job (404).
    NotFound,
    /// The job is still queued or running; cancel it first (409).
    NotTerminal(JobState),
    /// Removed from the store (200).
    Deleted,
}

/// The shared job store.
pub struct JobStore {
    inner: Mutex<Inner>,
    wake: Condvar,
    max_queued: usize,
    retain_terminal: usize,
    metrics: Arc<Metrics>,
    engines: EngineCache,
    /// Cross-job content-addressed tile cache; `None` disables caching
    /// server-wide (jobs can also opt out individually via the wire
    /// format's `"cache": false`).
    cache: Option<Arc<TileCache>>,
    pool: PoolRef,
    /// Fleet worker registry; while non-empty, jobs are sharded across
    /// the registered workers instead of running in-process.
    workers: Arc<WorkerRegistry>,
}

impl JobStore {
    /// An empty store admitting at most `max_queued` waiting jobs and
    /// retaining at most `retain_terminal` finished ones.
    pub fn new(
        max_queued: usize,
        retain_terminal: usize,
        metrics: Arc<Metrics>,
        cache: Option<Arc<TileCache>>,
        pool: PoolRef,
        workers: Arc<WorkerRegistry>,
    ) -> JobStore {
        let slots = pool.get().parallelism();
        JobStore {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                queue: std::collections::VecDeque::new(),
                terminal: std::collections::VecDeque::new(),
                next_id: 1,
                draining: false,
                shutdown: false,
            }),
            wake: Condvar::new(),
            max_queued: max_queued.max(1),
            retain_terminal: retain_terminal.max(1),
            metrics,
            engines: EngineCache::new(slots),
            cache,
            pool,
            workers,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once a drain has begun,
    /// [`SubmitError::Full`] when `max_queued` jobs are already waiting.
    pub fn submit(&self, spec: JobSpec) -> Result<String, SubmitError> {
        let mut inner = self.lock();
        if inner.draining || inner.shutdown {
            self.metrics.drain_rejected.inc();
            return Err(SubmitError::Draining);
        }
        let queued = inner
            .queue
            .iter()
            .filter(|id| {
                inner
                    .jobs
                    .get(*id)
                    .is_some_and(|j| j.state == JobState::Queued)
            })
            .count();
        if queued >= self.max_queued {
            self.metrics.admission_rejected.inc();
            return Err(SubmitError::Full);
        }
        let id = format!("job-{}", inner.next_id);
        inner.next_id += 1;
        let run_dir_name = spec.run_dir_name.clone();
        self.metrics.record_job_precision(spec.config.opc.precision);
        self.metrics
            .record_design_ingested(&spec.work.design.source);
        inner.jobs.insert(
            id.clone(),
            Job {
                state: JobState::Queued,
                spec: Some(spec),
                run_dir_name,
                handle: RunHandle::new(),
                progress: Progress::default(),
                error: None,
                result: None,
                submitted: Instant::now(),
            },
        );
        inner.queue.push_back(id.clone());
        self.metrics.jobs_submitted.inc();
        self.metrics.queue_depth.inc();
        drop(inner);
        self.wake.notify_all();
        Ok(id)
    }

    /// The job's status document, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<String> {
        let inner = self.lock();
        let job = inner.jobs.get(id)?;
        let p = job.progress;
        let doc = Json::obj(vec![
            ("id", Json::Str(id.to_string())),
            ("state", Json::Str(job.state.name().to_string())),
            (
                "progress",
                Json::obj(vec![
                    ("completed", Json::num_usize(p.completed)),
                    ("total", Json::num_usize(p.total)),
                    ("resumed", Json::num_usize(p.resumed)),
                    ("cache_hits", Json::num_usize(p.cache_hits)),
                    ("cache_misses", Json::num_usize(p.cache_misses)),
                ]),
            ),
            (
                "run_dir",
                match &job.run_dir_name {
                    Some(name) => Json::Str(name.clone()),
                    None => Json::Null,
                },
            ),
            (
                "error",
                match &job.error {
                    Some(msg) => Json::Str(msg.clone()),
                    None => Json::Null,
                },
            ),
        ]);
        Some(doc.to_string_compact())
    }

    /// The job's result document (only once `Done`).
    pub fn result(&self, id: &str) -> ResultLookup {
        let inner = self.lock();
        match inner.jobs.get(id) {
            None => ResultLookup::NotFound,
            Some(job) => match &job.result {
                Some(doc) => ResultLookup::Ready(doc.to_string_compact()),
                None => ResultLookup::NotReady(job.state, job.error.clone()),
            },
        }
    }

    /// Requests cancellation. Queued jobs terminate immediately; running
    /// jobs stop at the next tile boundary (their checkpoints remain).
    /// Returns the job's state after the request, `None` for unknown ids.
    /// Cancelling a terminal job is a no-op (idempotent).
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let mut inner = self.lock();
        let job = inner.jobs.get_mut(id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.spec = None;
                let elapsed = job.submitted.elapsed().as_secs_f64();
                self.metrics.jobs_cancelled.inc();
                self.metrics.queue_depth.dec();
                self.metrics.job_seconds.observe(elapsed);
                inner.note_terminal(id, self.retain_terminal, &self.metrics);
                drop(inner);
                self.wake.notify_all();
                Some(JobState::Cancelled)
            }
            JobState::Running => {
                job.handle.cancel();
                Some(JobState::Running)
            }
            terminal => Some(terminal),
        }
    }

    /// Begins a drain: stop admitting, cancel queued jobs, and ask running
    /// jobs to stop at their next tile boundary (checkpointing what
    /// finished). Idempotent.
    pub fn drain(&self) {
        let mut inner = self.lock();
        inner.draining = true;
        let queued: Vec<String> = inner.queue.iter().cloned().collect();
        for id in queued {
            let Some(job) = inner.jobs.get_mut(&id) else {
                continue;
            };
            if job.state == JobState::Queued {
                job.state = JobState::Cancelled;
                job.spec = None;
                self.metrics.jobs_cancelled.inc();
                self.metrics.queue_depth.dec();
                inner.note_terminal(&id, self.retain_terminal, &self.metrics);
            }
        }
        for job in inner.jobs.values() {
            if job.state == JobState::Running {
                job.handle.cancel();
            }
        }
        drop(inner);
        self.wake.notify_all();
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.lock().draining
    }

    /// Blocks until a drain is requested.
    pub fn wait_drain_requested(&self) {
        let mut inner = self.lock();
        while !inner.draining {
            inner = self
                .wake
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until no job is queued or running (used by the drain path).
    pub fn wait_idle(&self) {
        let mut inner = self.lock();
        while inner.jobs.values().any(|j| !j.state.terminal()) {
            inner = self
                .wake
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Tells executor threads to exit once the queue is empty.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.wake.notify_all();
    }

    /// Executor thread body: claim queued jobs and run them until
    /// shutdown. The server spawns `max_inflight` of these.
    pub fn run_executor(self: &Arc<Self>) {
        loop {
            let (id, spec, handle) = {
                let mut inner = self.lock();
                loop {
                    // Skip over entries cancelled while queued.
                    while let Some(front) = inner.queue.front() {
                        if inner
                            .jobs
                            .get(front)
                            .is_some_and(|j| j.state == JobState::Queued)
                        {
                            break;
                        }
                        inner.queue.pop_front();
                    }
                    if inner.queue.is_empty() {
                        if inner.shutdown {
                            return;
                        }
                        inner = self
                            .wake
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                        continue;
                    }
                    break;
                }
                let id = inner.queue.pop_front().expect("non-empty queue");
                let job = inner.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Running;
                let spec = job.spec.take().expect("queued job has a spec");
                let handle = job.handle.clone();
                self.metrics.queue_depth.dec();
                self.metrics.inflight.inc();
                (id, spec, handle)
            };

            let outcome = self.execute(&id, &spec, &handle);
            self.finish(&id, outcome);
        }
    }

    /// Runs one job's correction (no store lock held).
    fn execute(&self, id: &str, spec: &JobSpec, handle: &RunHandle) -> Result<RunOutcome, String> {
        let cache = if spec.cache {
            self.cache.as_deref()
        } else {
            None
        };
        let cache_enabled = cache.is_some();
        let progress = |event: &cardopc_runtime::TileEvent| {
            let mut inner = self.lock();
            if let Some(job) = inner.jobs.get_mut(id) {
                job.progress.completed = event.completed;
                job.progress.total = event.total;
                if event.resumed {
                    job.progress.resumed += 1;
                } else if event.cached {
                    // Replayed from the tile cache: count the hit, but
                    // keep the (near-zero) replay time out of the
                    // correction-latency histogram.
                    job.progress.cache_hits += 1;
                } else {
                    if cache_enabled {
                        job.progress.cache_misses += 1;
                    }
                    self.metrics.tile_seconds.observe(event.seconds);
                }
            }
        };
        let control = RunControl {
            progress: Some(&progress),
            handle: Some(handle),
            engines: Some(&self.engines),
            cache,
        };
        let run = AssertUnwindSafe(|| {
            let workers = self.workers.addrs();
            if !workers.is_empty() {
                match self.execute_fleet(spec, workers, &control) {
                    Ok(outcome) => return Ok(outcome),
                    // The fleet ran dry (every worker crashed/retired):
                    // finish the job in-process — checkpointed tiles are
                    // resumed when the job has a run_dir.
                    // A Spec failure here means the design file changed
                    // underfoot after submission validated it; the job's
                    // clip was already built, so run it in-process too.
                    Err(
                        FleetError::NoWorkers
                        | FleetError::WorkersExhausted { .. }
                        | FleetError::Spec(_),
                    ) => {}
                    Err(FleetError::Runtime(e)) => return Err(e),
                }
            }
            run_clip_controlled(&spec.clip, &spec.config, self.pool.get(), &control)
        });
        match catch_unwind(run) {
            Ok(Ok(outcome)) => Ok(outcome),
            Ok(Err(e)) => Err(e.to_string()),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "correction panicked".to_string());
                Err(format!("internal error: {msg}"))
            }
        }
    }

    /// Shards one job across the registered fleet workers, mapping the
    /// fleet outcome onto the runtime's [`RunOutcome`] shape (the
    /// timing-free manifest is byte-identical by construction, so
    /// clients cannot tell where a job ran).
    fn execute_fleet(
        &self,
        spec: &JobSpec,
        workers: Vec<std::net::SocketAddr>,
        control: &RunControl<'_>,
    ) -> Result<cardopc_runtime::RunOutcome, FleetError> {
        self.metrics.fleet_jobs.inc();
        let config = FleetConfig {
            workers,
            run_dir: spec.config.run_dir.clone(),
            max_tiles: spec.config.max_tiles,
            ..FleetConfig::default()
        };
        let outcome = run_fleet(&spec.work, &config, control)?;
        let stats = outcome.stats;
        self.metrics
            .fleet_tiles_dispatched
            .add(stats.dispatched as u64);
        self.metrics.fleet_tiles_stolen.add(stats.stolen as u64);
        self.metrics
            .fleet_tiles_redispatched
            .add(stats.redispatched as u64);
        self.metrics.fleet_duplicates.add(stats.duplicates as u64);
        self.metrics
            .fleet_workers_retired
            .add(stats.retired_workers as u64);
        self.metrics
            .fleet_tiles_recovered
            .add(stats.recovered as u64);
        Ok(cardopc_runtime::RunOutcome {
            manifest: outcome.manifest,
            stitched: outcome.stitched,
            results: outcome.outcome.results,
            complete: outcome.complete,
            cancelled: outcome.cancelled,
        })
    }

    /// Removes a terminal job from the store (freeing its result
    /// document). Queued/running jobs must be cancelled first.
    pub fn delete(&self, id: &str) -> DeleteOutcome {
        let mut inner = self.lock();
        match inner.jobs.get(id) {
            None => DeleteOutcome::NotFound,
            Some(job) if !job.state.terminal() => DeleteOutcome::NotTerminal(job.state),
            Some(_) => {
                inner.jobs.remove(id);
                inner.terminal.retain(|t| t != id);
                DeleteOutcome::Deleted
            }
        }
    }

    /// Records a job's terminal state and result document.
    fn finish(&self, id: &str, outcome: Result<RunOutcome, String>) {
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(id) {
            let elapsed = job.submitted.elapsed().as_secs_f64();
            match outcome {
                Ok(outcome) if outcome.cancelled => {
                    job.state = JobState::Cancelled;
                    self.metrics.jobs_cancelled.inc();
                }
                Ok(outcome) => {
                    job.result = Some(result_document(id, &outcome));
                    job.state = JobState::Done;
                    self.metrics.jobs_done.inc();
                }
                Err(msg) => {
                    job.error = Some(msg);
                    job.state = JobState::Failed;
                    self.metrics.jobs_failed.inc();
                }
            }
            self.metrics.inflight.dec();
            self.metrics.job_seconds.observe(elapsed);
            inner.note_terminal(id, self.retain_terminal, &self.metrics);
        }
        drop(inner);
        self.wake.notify_all();
    }
}

/// Builds the result document: the *timing-free* manifest embedded as a
/// parsed subtree (the hand-rolled JSON round-trips bit-exactly, so
/// re-serialising it reproduces `manifest.to_json(false)` byte for byte)
/// plus the stitched contours when the run completed.
fn result_document(id: &str, outcome: &RunOutcome) -> Json {
    let manifest =
        Json::parse(&outcome.manifest.to_json(false)).expect("runtime manifests are valid JSON");
    let contours = match &outcome.stitched {
        None => Json::Null,
        Some(stitched) => Json::obj(vec![
            ("mains", shapes_json(&stitched.mains)),
            ("srafs", shapes_json(&stitched.srafs)),
            (
                "seam_violations",
                Json::num_usize(stitched.seam_violations.len()),
            ),
        ]),
    };
    Json::obj(vec![
        ("id", Json::Str(id.to_string())),
        ("complete", Json::Bool(outcome.complete)),
        ("manifest", manifest),
        ("contours", contours),
    ])
}

fn shapes_json(shapes: &[cardopc_runtime::StitchedShape]) -> Json {
    Json::Arr(
        shapes
            .iter()
            .map(|shape| {
                Json::obj(vec![
                    (
                        "global_id",
                        match shape.global_id {
                            Some(id) => Json::num_usize(id),
                            None => Json::Null,
                        },
                    ),
                    ("tension", Json::Num(shape.tension)),
                    (
                        "control_points",
                        Json::Arr(
                            shape
                                .control_points
                                .iter()
                                .map(|p| Json::num_arr(&[p.x, p.y]))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}
