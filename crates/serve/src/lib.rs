//! `cardopc-serve` — an HTTP correction service over the tiled runtime.
//!
//! The service turns [`cardopc_runtime`] into a long-lived process:
//! clients `POST` correction jobs as JSON, poll per-tile progress, and
//! fetch results whose timing-free manifest is **byte-identical** to a
//! direct `cardopc-runtime` run of the same input — including when jobs
//! run concurrently, because every tile is a pure function of its input
//! and the scheduler merges results in tile order.
//!
//! Like the repo's proptest/criterion stand-ins, everything is
//! hand-rolled on `std` (the build containers have no crates.io access):
//! HTTP parsing ([`http`]), the wire format ([`wire`]), metrics
//! ([`metrics`]), and the job machinery ([`job`]).
//!
//! # Endpoints
//!
//! | Method & path               | Purpose                                   |
//! |-----------------------------|-------------------------------------------|
//! | `POST /v1/jobs`             | submit a job (201, or 429/503 on refusal) |
//! | `GET /v1/jobs/{id}`         | state + per-tile progress                 |
//! | `GET /v1/jobs/{id}/result`  | manifest + corrected contours (409 early) |
//! | `POST /v1/jobs/{id}/cancel` | cooperative cancel (checkpoints remain)   |
//! | `DELETE /v1/jobs/{id}`      | drop a terminal job's record (409 else)   |
//! | `POST /v1/workers`          | register fleet workers (spawn or connect) |
//! | `GET /v1/workers`           | registered workers with health probes     |
//! | `GET /healthz`              | liveness + drain state                    |
//! | `GET /metrics`              | Prometheus text metrics                   |
//! | `POST /admin/drain`         | stop admitting, finish in-flight, exit    |
//!
//! # Backpressure
//!
//! Admission is bounded: at most `max_queued` jobs wait and
//! `max_inflight` run. An overflowing submit is answered `429 Too Many
//! Requests` with a `Retry-After` header — the service sheds load at the
//! door instead of queueing unboundedly. Memory is bounded on the way
//! out too: only the newest `retain_terminal` finished jobs stay
//! queryable, and at most `MAX_CONNECTIONS` connection handlers run at
//! once.

pub mod fleet;
pub mod job;
pub mod metrics;
pub mod wire;

// The HTTP subset and its client grew up here and moved to
// `cardopc-fleet` (the fleet wire protocol reuses them); re-exported so
// `cardopc_serve::http`/`::client` paths keep working.
pub use cardopc_fleet::{client, http};

use fleet::WorkerRegistry;
use http::{ReadOutcome, Response};
use job::{DeleteOutcome, JobStore, PoolRef, ResultLookup, SubmitError};
use metrics::Metrics;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Maximum concurrently served connections. Each connection gets a
/// short-lived thread; past this the accept loop waits for a slot
/// instead of spawning unboundedly (pending peers queue in the listen
/// backlog, and per-connection IO timeouts guarantee slots free up).
const MAX_CONNECTIONS: usize = 64;

/// How long the accept loop backs off after `accept()` fails. A
/// persistent error (e.g. EMFILE) would otherwise busy-spin the thread.
const ACCEPT_ERROR_BACKOFF: std::time::Duration = std::time::Duration::from_millis(50);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Maximum jobs waiting for an executor (beyond → 429).
    pub max_queued: usize,
    /// Number of executor threads (concurrent jobs).
    pub max_inflight: usize,
    /// Newest terminal (done/failed/cancelled) jobs kept queryable;
    /// older ones are evicted so memory does not grow with every job
    /// ever served. `DELETE /v1/jobs/{id}` frees a result sooner.
    pub retain_terminal: usize,
    /// Worker pool size override; `None` uses the process-global pool
    /// (sized by `CARDOPC_THREADS`, falling back to the CPU count).
    pub threads: Option<usize>,
    /// Directory under which job `run_dir` names are resolved.
    pub run_root: PathBuf,
    /// Whether jobs share a content-addressed tile correction cache
    /// (`false` disables it server-wide; individual jobs can also opt
    /// out with `"cache": false`).
    pub cache: bool,
    /// Persist the tile cache under this directory; `None` keeps it
    /// in memory only (lost on restart).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8650".to_string(),
            max_queued: 16,
            max_inflight: 1,
            retain_terminal: 256,
            threads: None,
            run_root: PathBuf::from("runs"),
            cache: true,
            cache_dir: None,
        }
    }
}

/// Shared per-connection context.
struct Shared {
    store: Arc<JobStore>,
    metrics: Arc<Metrics>,
    cache: Option<Arc<cardopc_runtime::TileCache>>,
    workers: Arc<WorkerRegistry>,
    run_root: PathBuf,
}

/// A running correction service.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    stop_accepting: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the executor and accept threads, and returns.
    ///
    /// # Errors
    ///
    /// Bind/listen failures and an uncreatable run root.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.run_root)?;
        let pool = match config.threads {
            Some(n) => PoolRef::Owned(Arc::new(cardopc_litho::WorkerPool::new(n.max(1)))),
            None => PoolRef::Global,
        };
        let metrics = Arc::new(Metrics::default());
        let cache = if config.cache {
            let cache_config = cardopc_runtime::CacheConfig {
                dir: config.cache_dir.clone(),
                ..cardopc_runtime::CacheConfig::default()
            };
            Some(Arc::new(
                cardopc_runtime::TileCache::open(&cache_config)
                    .map_err(|e| io::Error::other(e.to_string()))?,
            ))
        } else {
            None
        };
        let workers = Arc::new(WorkerRegistry::new(Arc::clone(&metrics)));
        let store = Arc::new(JobStore::new(
            config.max_queued,
            config.retain_terminal,
            Arc::clone(&metrics),
            cache.clone(),
            pool,
            Arc::clone(&workers),
        ));

        let executors = (0..config.max_inflight.max(1))
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name(format!("cardopc-exec-{i}"))
                    .spawn(move || store.run_executor())
            })
            .collect::<io::Result<Vec<_>>>()?;

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            metrics,
            cache,
            workers,
            run_root: config.run_root,
        });
        let stop_accepting = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop_accepting);
            std::thread::Builder::new()
                .name("cardopc-accept".to_string())
                .spawn(move || accept_loop(listener, &shared, &stop))?
        };

        Ok(Server {
            local_addr,
            shared,
            stop_accepting,
            accept_thread: Some(accept_thread),
            executors,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The fleet worker registry (what `POST /v1/workers` mutates);
    /// embedders can register workers programmatically.
    pub fn workers(&self) -> &Arc<WorkerRegistry> {
        &self.shared.workers
    }

    /// Blocks until a drain has been requested (via `POST /admin/drain`
    /// or [`Server::drain`]) and every job has reached a terminal state.
    /// This is the serve-mode main thread's parking spot; returning means
    /// the process can exit 0.
    pub fn wait_drained(&self) {
        self.shared.store.wait_drain_requested();
        self.shared.store.wait_idle();
    }

    /// Initiates a drain programmatically (equivalent to
    /// `POST /admin/drain`): stop admitting, cancel queued jobs, stop
    /// running jobs at their next tile boundary.
    pub fn drain(&self) {
        self.shared.store.drain();
    }

    /// Full stop: drain, wait for jobs to settle, stop the accept loop,
    /// and join every thread. Called by `Drop`; explicit calls are
    /// idempotent.
    pub fn shutdown(&mut self) {
        self.shared.store.drain();
        self.shared.store.wait_idle();
        self.shared.store.shutdown();
        self.stop_accepting.store(true, Ordering::Release);
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for thread in self.executors.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A counting semaphore bounding concurrent connection-handler threads.
struct ConnGate {
    active: Mutex<usize>,
    freed: Condvar,
}

impl ConnGate {
    fn new() -> ConnGate {
        ConnGate {
            active: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Blocks until a slot is free, then claims it.
    fn acquire(&self) {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        while *active >= MAX_CONNECTIONS {
            active = self
                .freed
                .wait(active)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *active += 1;
    }

    fn release(&self) {
        let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        *active = active.saturating_sub(1);
        drop(active);
        self.freed.notify_one();
    }
}

/// An acquired connection slot; released on drop (unwind included).
struct ConnSlot(Arc<ConnGate>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Accepts connections until told to stop; each connection is served on
/// its own short-lived thread, at most [`MAX_CONNECTIONS`] at a time
/// (requests are small and bounded by the parser's limits, and every
/// socket read/write carries a timeout, so slots always come back).
fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    let gate = Arc::new(ConnGate::new());
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                // Back off instead of busy-spinning: a persistent failure
                // (fd exhaustion, say) repeats immediately otherwise.
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        gate.acquire();
        let slot = ConnSlot(Arc::clone(&gate));
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("cardopc-conn".to_string())
            .spawn(move || {
                let _slot = slot;
                handle_connection(stream, &shared);
            });
    }
}

/// Serves one connection: read one request, route, answer, close.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let response = match http::read_request(&mut stream) {
        ReadOutcome::Disconnected => return,
        ReadOutcome::Malformed(e) => Response::error(e.status, &e.message),
        ReadOutcome::Request(request) => route(&request, shared),
    };
    shared.metrics.http_requests.inc();
    match response.status {
        400..=499 => shared.metrics.http_client_errors.inc(),
        500..=599 => shared.metrics.http_server_errors.inc(),
        _ => {}
    }
    response.write(&mut stream);
}

/// Maps a parsed request to a response.
fn route(request: &http::Request, shared: &Shared) -> Response {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Response::json(
            200,
            cardopc_json::Json::obj(vec![
                ("ok", cardopc_json::Json::Bool(true)),
                (
                    "draining",
                    cardopc_json::Json::Bool(shared.store.draining()),
                ),
            ])
            .to_string_compact(),
        ),
        ("GET", "/metrics") => Response::text(
            200,
            shared
                .metrics
                .render_with_cache(shared.cache.as_ref().map(|c| c.stats())),
        ),
        ("POST", "/v1/jobs") => submit(request, shared),
        ("POST", "/v1/workers") => register_workers(request, shared),
        ("GET", "/v1/workers") => Response::json(200, shared.workers.document()),
        ("POST", "/admin/drain") => {
            shared.store.drain();
            Response::json(202, r#"{"draining":true}"#)
        }
        // Any method: job_route answers 405 itself for wrong methods, so
        // e.g. PUT /v1/jobs/{id} is a 405, not a 404 like unknown paths.
        _ if path.starts_with("/v1/jobs/") => job_route(request, shared),
        (_, "/healthz" | "/metrics" | "/v1/jobs" | "/v1/workers" | "/admin/drain") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such route"),
    }
}

/// `POST /v1/jobs`: parse, validate, admit.
fn submit(request: &http::Request, shared: &Shared) -> Response {
    let Some(body) = request.body_str() else {
        return Response::error(400, "request body must be UTF-8 JSON");
    };
    let spec = match wire::parse_job(body, &shared.run_root) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    match shared.store.submit(spec) {
        Ok(id) => Response::json(
            201,
            cardopc_json::Json::obj(vec![
                ("id", cardopc_json::Json::Str(id)),
                ("state", cardopc_json::Json::Str("queued".to_string())),
            ])
            .to_string_compact(),
        ),
        Err(SubmitError::Full) => {
            Response::error(429, "job queue is full").with_header("retry-after", "1")
        }
        // Draining is longer-lived than a full queue, so hint a longer
        // retry (the peer may be load-balancing across replicas anyway).
        Err(SubmitError::Draining) => {
            Response::error(503, "server is draining").with_header("retry-after", "5")
        }
    }
}

/// `POST /v1/workers`: register fleet workers — `{"spawn_local": N}`
/// starts N in-process workers, `{"addr": "host:port"}` connects a
/// running `cardopc worker` after a health probe.
fn register_workers(request: &http::Request, shared: &Shared) -> Response {
    let Some(body) = request.body_str() else {
        return Response::error(400, "request body must be UTF-8 JSON");
    };
    let json = match cardopc_json::Json::parse(body) {
        Ok(json) => json,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    if !matches!(json, cardopc_json::Json::Obj(_)) {
        return Response::error(400, "body must be a JSON object");
    }
    if let Err(msg) = cardopc_fleet::spec::reject_unknown(&json, &["spawn_local", "addr"]) {
        return Response::error(400, &msg);
    }
    let added = match (json.get("spawn_local"), json.get("addr")) {
        (Some(n), None) => {
            let Some(count) = n.as_usize().filter(|&c| (1..=64).contains(&c)) else {
                return Response::error(400, "'spawn_local' must be an integer in 1..=64");
            };
            match shared.workers.spawn_local(count) {
                Ok(addrs) => addrs,
                Err(e) => return Response::error(500, &format!("cannot spawn workers: {e}")),
            }
        }
        (None, Some(addr)) => {
            let Some(addr) = addr.as_str().and_then(|s| s.parse::<SocketAddr>().ok()) else {
                return Response::error(400, "'addr' must be a \"host:port\" socket address");
            };
            if let Err(msg) = shared.workers.connect(addr) {
                return Response::error(400, &msg);
            }
            vec![addr]
        }
        _ => {
            return Response::error(400, "provide exactly one of 'spawn_local' or 'addr'");
        }
    };
    Response::json(
        201,
        cardopc_json::Json::obj(vec![
            (
                "added",
                cardopc_json::Json::Arr(
                    added
                        .iter()
                        .map(|a| cardopc_json::Json::Str(a.to_string()))
                        .collect(),
                ),
            ),
            (
                "total",
                cardopc_json::Json::num_usize(shared.workers.addrs().len()),
            ),
        ])
        .to_string_compact(),
    )
}

/// Routes `/v1/jobs/{id}[/result|/cancel]` for every method (wrong
/// methods on a known sub-resource get 405, unknown sub-resources 404).
fn job_route(request: &http::Request, shared: &Shared) -> Response {
    let rest = &request.path["/v1/jobs/".len()..];
    let method = request.method.as_str();
    if let Some(id) = rest.strip_suffix("/cancel") {
        if method != "POST" {
            return Response::error(405, "cancel requires POST");
        }
        return match shared.store.cancel(id) {
            None => Response::error(404, "no such job"),
            Some(state) => Response::json(
                200,
                cardopc_json::Json::obj(vec![
                    ("id", cardopc_json::Json::Str(id.to_string())),
                    ("state", cardopc_json::Json::Str(state.name().to_string())),
                ])
                .to_string_compact(),
            ),
        };
    }
    if let Some(id) = rest.strip_suffix("/result") {
        if method != "GET" {
            return Response::error(405, "result requires GET");
        }
        return match shared.store.result(id) {
            ResultLookup::NotFound => Response::error(404, "no such job"),
            // A failed job's 409 carries the underlying failure detail
            // (panic payload / litho error), not just the bare state.
            ResultLookup::NotReady(state, Some(error)) => {
                Response::error(409, &format!("job is {}: {error}", state.name()))
            }
            ResultLookup::NotReady(state, None) => Response::error(
                409,
                &format!("job is {}; result requires state 'done'", state.name()),
            ),
            ResultLookup::Ready(doc) => Response::json(200, doc),
        };
    }
    if rest.contains('/') {
        return Response::error(404, "no such route");
    }
    match method {
        "GET" => match shared.store.status(rest) {
            None => Response::error(404, "no such job"),
            Some(doc) => Response::json(200, doc),
        },
        "DELETE" => match shared.store.delete(rest) {
            DeleteOutcome::NotFound => Response::error(404, "no such job"),
            DeleteOutcome::NotTerminal(state) => Response::error(
                409,
                &format!("job is {}; cancel it before deleting", state.name()),
            ),
            DeleteOutcome::Deleted => Response::json(
                200,
                cardopc_json::Json::obj(vec![
                    ("id", cardopc_json::Json::Str(rest.to_string())),
                    ("deleted", cardopc_json::Json::Bool(true)),
                ])
                .to_string_compact(),
            ),
        },
        _ => Response::error(405, "job requires GET or DELETE"),
    }
}
