//! Hand-rolled service metrics: atomic counters, gauges, and fixed-bucket
//! latency histograms, rendered in the Prometheus text exposition format.
//!
//! No external metrics crate exists in the offline build environment, so
//! this implements the minimum a scraper needs: monotonically increasing
//! `_total` counters, instantaneous gauges, and histograms with
//! cumulative `_bucket{le=...}` series plus estimated `p50`/`p90`/`p99`
//! gauges (linear interpolation inside the owning bucket — the standard
//! client-side quantile estimate for fixed buckets).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (batch updates, e.g. per-job fleet stats).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating; a miscounted decrement clamps at zero
    /// rather than wrapping to 2^64).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (seconds) of the latency histogram buckets; `f64::INFINITY`
/// is implicit as the final `+Inf` bucket.
pub const LATENCY_BUCKETS: [f64; 10] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0, 30.0];

/// A fixed-bucket latency histogram (seconds).
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket observation counts (non-cumulative); the last slot is
    /// the overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations, in nanoseconds (fits ~584 years).
    sum_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..=LATENCY_BUCKETS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation, in seconds.
    pub fn observe(&self, seconds: f64) {
        let seconds = if seconds.is_finite() && seconds >= 0.0 {
            seconds
        } else {
            0.0
        };
        let slot = LATENCY_BUCKETS
            .iter()
            .position(|&le| seconds <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, seconds.
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Estimated quantile (`0.0..=1.0`) by linear interpolation within the
    /// bucket that holds the target rank; 0.0 with no observations.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            if seen + here >= target {
                let lower = if i == 0 { 0.0 } else { LATENCY_BUCKETS[i - 1] };
                let upper = LATENCY_BUCKETS
                    .get(i)
                    .copied()
                    .unwrap_or(LATENCY_BUCKETS[LATENCY_BUCKETS.len() - 1]);
                let into = (target - seen) as f64 / here.max(1) as f64;
                return lower + (upper - lower) * into;
            }
            seen += here;
        }
        LATENCY_BUCKETS[LATENCY_BUCKETS.len() - 1]
    }

    /// Renders the histogram as Prometheus `_bucket`/`_sum`/`_count`
    /// series plus `p50`/`p90`/`p99` estimate gauges.
    fn render(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = LATENCY_BUCKETS
                .get(i)
                .map_or_else(|| "+Inf".to_string(), |b| format!("{b}"));
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let _ = writeln!(
                out,
                "{name}_estimate{{quantile=\"{label}\"}} {}",
                self.quantile(q)
            );
        }
    }
}

/// All service metrics, shared by the router, admission gate and
/// executors.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests handled, any route.
    pub http_requests: Counter,
    /// Requests answered with a 4xx status.
    pub http_client_errors: Counter,
    /// Requests answered with a 5xx status.
    pub http_server_errors: Counter,
    /// Jobs accepted into the queue.
    pub jobs_submitted: Counter,
    /// Jobs accepted per simulation precision, indexed by
    /// [`cardopc_litho::Precision::tag`]; rendered as the labelled
    /// `cardopc_jobs_total{precision="..."}` family.
    pub jobs_by_precision: [Counter; 2],
    /// Designs successfully ingested per source format, indexed
    /// generated=0 / gds=1; rendered as the labelled
    /// `cardopc_designs_ingested_total{format="..."}` family.
    pub designs_ingested: [Counter; 2],
    /// Jobs that finished in each terminal state.
    pub jobs_done: Counter,
    /// Jobs that failed.
    pub jobs_failed: Counter,
    /// Jobs cancelled (by request or by drain).
    pub jobs_cancelled: Counter,
    /// Terminal jobs evicted by the retention cap (`retain_terminal`).
    pub jobs_evicted: Counter,
    /// Submissions rejected by the admission gate (429).
    pub admission_rejected: Counter,
    /// Submissions refused because the server is draining (503).
    pub drain_rejected: Counter,
    /// Jobs routed through the worker fleet instead of the in-process
    /// runtime.
    pub fleet_jobs: Counter,
    /// Fleet tile dispatch attempts (including steals and re-dispatches).
    pub fleet_tiles_dispatched: Counter,
    /// Fleet steal dispatches (duplicate of a still-leased tile).
    pub fleet_tiles_stolen: Counter,
    /// Fleet tiles re-queued after a failed or expired dispatch.
    pub fleet_tiles_redispatched: Counter,
    /// Fleet results discarded because another dispatch won the tile.
    pub fleet_duplicates: Counter,
    /// Fleet workers retired (crashed, hung, or persistently failing).
    pub fleet_workers_retired: Counter,
    /// Fleet tiles adopted from workers' checkpoints during recovery.
    pub fleet_tiles_recovered: Counter,
    /// Jobs currently queued.
    pub queue_depth: Gauge,
    /// Jobs currently running.
    pub inflight: Gauge,
    /// Registered fleet workers (spawn-local + remote).
    pub fleet_workers: Gauge,
    /// Per-tile correction latency (executed tiles only).
    pub tile_seconds: Histogram,
    /// End-to-end job latency (queued → terminal).
    pub job_seconds: Histogram,
}

impl Metrics {
    /// Counts one accepted job against its simulation precision.
    pub fn record_job_precision(&self, precision: cardopc_litho::Precision) {
        self.jobs_by_precision[precision.tag() as usize].inc();
    }

    /// Counts one successfully ingested design against its source format.
    pub fn record_design_ingested(&self, source: &cardopc_layout::DesignSource) {
        let idx = match source {
            cardopc_layout::DesignSource::Generated { .. } => 0,
            cardopc_layout::DesignSource::Gds { .. } => 1,
        };
        self.designs_ingested[idx].inc();
    }

    /// [`Metrics::render`] plus the tile-cache series, when the server
    /// has a cache attached (`None` leaves the cache series out rather
    /// than exporting misleading zeros).
    pub fn render_with_cache(&self, cache: Option<cardopc_runtime::CacheStats>) -> String {
        use std::fmt::Write as _;
        let mut out = self.render();
        let Some(stats) = cache else {
            return out;
        };
        for (name, value) in [
            ("cardopc_cache_hits_total", stats.hits),
            ("cardopc_cache_misses_total", stats.misses),
            ("cardopc_cache_evicted_total", stats.evicted),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in [
            ("cardopc_cache_entries", stats.entries),
            ("cardopc_cache_bytes", stats.bytes),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }

    /// Renders every metric in the Prometheus text format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let counters: [(&str, &Counter); 16] = [
            ("cardopc_http_requests_total", &self.http_requests),
            ("cardopc_http_client_errors_total", &self.http_client_errors),
            ("cardopc_http_server_errors_total", &self.http_server_errors),
            ("cardopc_jobs_submitted_total", &self.jobs_submitted),
            ("cardopc_jobs_done_total", &self.jobs_done),
            ("cardopc_jobs_failed_total", &self.jobs_failed),
            ("cardopc_jobs_cancelled_total", &self.jobs_cancelled),
            ("cardopc_jobs_evicted_total", &self.jobs_evicted),
            ("cardopc_admission_rejected_total", &self.admission_rejected),
            ("cardopc_fleet_jobs_total", &self.fleet_jobs),
            (
                "cardopc_fleet_tiles_dispatched_total",
                &self.fleet_tiles_dispatched,
            ),
            ("cardopc_fleet_tiles_stolen_total", &self.fleet_tiles_stolen),
            (
                "cardopc_fleet_tiles_redispatched_total",
                &self.fleet_tiles_redispatched,
            ),
            ("cardopc_fleet_duplicates_total", &self.fleet_duplicates),
            (
                "cardopc_fleet_workers_retired_total",
                &self.fleet_workers_retired,
            ),
            (
                "cardopc_fleet_tiles_recovered_total",
                &self.fleet_tiles_recovered,
            ),
        ];
        for (name, counter) in counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        let _ = writeln!(out, "# TYPE cardopc_jobs_total counter");
        for precision in [cardopc_litho::Precision::F64, cardopc_litho::Precision::F32] {
            let _ = writeln!(
                out,
                "cardopc_jobs_total{{precision=\"{}\"}} {}",
                precision.name(),
                self.jobs_by_precision[precision.tag() as usize].get()
            );
        }
        let _ = writeln!(out, "# TYPE cardopc_designs_ingested_total counter");
        for (label, counter) in [
            ("generated", &self.designs_ingested[0]),
            ("gds", &self.designs_ingested[1]),
        ] {
            let _ = writeln!(
                out,
                "cardopc_designs_ingested_total{{format=\"{label}\"}} {}",
                counter.get()
            );
        }
        let _ = writeln!(out, "# TYPE cardopc_drain_rejected_total counter");
        let _ = writeln!(
            out,
            "cardopc_drain_rejected_total {}",
            self.drain_rejected.get()
        );
        for (name, gauge) in [
            ("cardopc_queue_depth", &self.queue_depth),
            ("cardopc_jobs_inflight", &self.inflight),
            ("cardopc_fleet_workers", &self.fleet_workers),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        self.tile_seconds.render("cardopc_tile_seconds", &mut out);
        self.job_seconds.render("cardopc_job_seconds", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_move() {
        let m = Metrics::default();
        m.http_requests.inc();
        m.http_requests.inc();
        assert_eq!(m.http_requests.get(), 2);
        m.queue_depth.inc();
        m.queue_depth.dec();
        m.queue_depth.dec(); // saturates, no wrap
        assert_eq!(m.queue_depth.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        for _ in 0..90 {
            h.observe(0.02); // bucket le=0.025
        }
        for _ in 0..10 {
            h.observe(2.0); // bucket le=5.0
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (90.0 * 0.02 + 10.0 * 2.0)).abs() < 1e-6);
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.01 && p50 <= 0.025, "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 1.0 && p99 <= 5.0, "p99 {p99}");
        // Out-of-range and non-finite observations are clamped, not lost.
        h.observe(f64::NAN);
        h.observe(-1.0);
        assert_eq!(h.count(), 102);
    }

    #[test]
    fn render_is_prometheus_shaped() {
        let m = Metrics::default();
        m.jobs_submitted.inc();
        m.tile_seconds.observe(0.3);
        let text = m.render();
        assert!(text.contains("cardopc_jobs_submitted_total 1"));
        assert!(text.contains("# TYPE cardopc_tile_seconds histogram"));
        assert!(text.contains("cardopc_tile_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("cardopc_tile_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cardopc_tile_seconds_count 1"));
        assert!(text.contains("cardopc_tile_seconds_estimate{quantile=\"0.5\"}"));
    }

    #[test]
    fn per_precision_job_counters_render_labelled() {
        use cardopc_litho::Precision;
        let m = Metrics::default();
        let text = m.render();
        assert!(text.contains("cardopc_jobs_total{precision=\"f64\"} 0"));
        assert!(text.contains("cardopc_jobs_total{precision=\"f32\"} 0"));
        m.record_job_precision(Precision::F64);
        m.record_job_precision(Precision::F32);
        m.record_job_precision(Precision::F32);
        let text = m.render();
        assert!(text.contains("cardopc_jobs_total{precision=\"f64\"} 1"));
        assert!(text.contains("cardopc_jobs_total{precision=\"f32\"} 2"));
    }

    #[test]
    fn cache_series_render_only_when_a_cache_exists() {
        let m = Metrics::default();
        let without = m.render_with_cache(None);
        assert!(!without.contains("cardopc_cache_hits_total"));
        let stats = cardopc_runtime::CacheStats {
            hits: 7,
            misses: 2,
            evicted: 1,
            entries: 2,
            bytes: 4096,
        };
        let with = m.render_with_cache(Some(stats));
        assert!(with.contains("cardopc_cache_hits_total 7"));
        assert!(with.contains("cardopc_cache_misses_total 2"));
        assert!(with.contains("cardopc_cache_evicted_total 1"));
        assert!(with.contains("cardopc_cache_entries 2"));
        assert!(with.contains("cardopc_cache_bytes 4096"));
    }
}
