//! Wire format of the correction service: JSON job requests parsed into
//! runtime inputs, with *non-panicking* validation.
//!
//! [`OpcConfig::assert_valid`](cardopc_opc::OpcConfig) panics by design —
//! flow configurations are build-time data inside the library. A network
//! service cannot extend that contract to untrusted bytes, so this module
//! re-checks every override with [`validate`] and maps each failure to a
//! 400 response instead. Unknown keys are rejected (strict API: a typoed
//! parameter must not silently fall back to its default).
//!
//! A job request looks like:
//!
//! ```json
//! {
//!   "design": {"kind": "gcd", "tiles": 1, "crop": 2048.0},
//!   "tiling": {"tile": 1024.0, "halo": 512.0},
//!   "opc": {"preset": "large_scale", "pitch": 8.0, "iterations": 4},
//!   "run_dir": "smoke",
//!   "max_tiles": 3,
//!   "cache": true
//! }
//! ```
//!
//! `design` is required; everything else defaults to the CLI's `--quick`
//! geometry-free equivalents (`large_scale` preset, 4096 nm tiles,
//! 1024 nm halo). `run_dir` is a *name*, resolved under the server's run
//! root — submitting the same name again resumes that checkpoint.

use cardopc_json::Json;
use cardopc_layout::{design_tiles, Clip, DesignKind};
use cardopc_opc::OpcConfig;
use cardopc_runtime::{RunConfig, TilingConfig};
use std::path::Path;

/// Upper bound on `design.tiles`: a correction service must not let one
/// request allocate an arbitrarily large synthetic design.
pub const MAX_DESIGN_TILES: usize = 16;

/// A validated job specification.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The input clip.
    pub clip: Clip,
    /// The runtime configuration (with `run_dir` already resolved under
    /// the server's run root).
    pub config: RunConfig,
    /// The `run_dir` name as submitted, if any (echoed in job status).
    pub run_dir_name: Option<String>,
    /// Whether this job may use the server's shared tile cache (default
    /// `true`; `"cache": false` opts a single job out).
    pub cache: bool,
}

/// A request rejection: the message lands in the 400 response body.
pub type BadRequest = String;

/// Parses and validates a `POST /v1/jobs` body.
///
/// # Errors
///
/// A human-readable message for any malformed, out-of-range, or unknown
/// field; the caller answers 400 and never constructs runtime state.
pub fn parse_job(body: &str, run_root: &Path) -> Result<JobSpec, BadRequest> {
    let json = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(_) = &json else {
        return Err("request body must be a JSON object".into());
    };
    reject_unknown(
        &json,
        &["design", "tiling", "opc", "run_dir", "max_tiles", "cache"],
    )?;

    let design = json
        .get("design")
        .ok_or("missing required field 'design'")?;
    let clip = parse_design(design)?;

    let tiling = match json.get("tiling") {
        Some(t) => parse_tiling(t)?,
        None => TilingConfig {
            tile_size: 4096.0,
            halo: 1024.0,
        },
    };

    let opc = match json.get("opc") {
        Some(o) => parse_opc(o)?,
        None => OpcConfig::large_scale(),
    };
    validate(&opc)?;

    let run_dir_name = match json.get("run_dir") {
        None | Some(Json::Null) => None,
        Some(v) => Some(sanitize_run_dir(
            v.as_str().ok_or("'run_dir' must be a string")?,
        )?),
    };
    let max_tiles = match json.get("max_tiles") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let n = v
                .as_usize()
                .ok_or("'max_tiles' must be a non-negative integer")?;
            if n == 0 {
                return Err("'max_tiles' must be at least 1".into());
            }
            Some(n)
        }
    };
    let cache = match json.get("cache") {
        None | Some(Json::Null) => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("'cache' must be a boolean".into()),
    };

    Ok(JobSpec {
        clip,
        config: RunConfig {
            opc,
            tiling,
            run_dir: run_dir_name.as_ref().map(|name| run_root.join(name)),
            max_tiles,
        },
        run_dir_name,
        cache,
    })
}

/// Parses the `design` object into a clip (same construction as the CLI's
/// `--design`/`--design-tiles`/`--crop` flags).
fn parse_design(design: &Json) -> Result<Clip, BadRequest> {
    let Json::Obj(_) = design else {
        return Err("'design' must be an object".into());
    };
    reject_unknown(design, &["kind", "tiles", "crop"])?;
    let kind = match design
        .get("kind")
        .ok_or("missing 'design.kind'")?
        .as_str()
        .ok_or("'design.kind' must be a string")?
    {
        "gcd" => DesignKind::Gcd,
        "aes" => DesignKind::Aes,
        "dynamicnode" => DesignKind::DynamicNode,
        other => return Err(format!("unknown design kind '{other}'")),
    };
    let tiles = match design.get("tiles") {
        None => 1,
        Some(v) => v.as_usize().ok_or("'design.tiles' must be an integer")?,
    };
    if tiles == 0 || tiles > MAX_DESIGN_TILES {
        return Err(format!("'design.tiles' must be in 1..={MAX_DESIGN_TILES}"));
    }
    let crop = match design.get("crop") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let nm = v.as_f64().ok_or("'design.crop' must be a number")?;
            if !nm.is_finite() || nm <= 0.0 {
                return Err("'design.crop' must be positive".into());
            }
            Some(nm)
        }
    };
    Ok(build_clip(kind, tiles, crop))
}

/// Builds the input clip: `count` design tiles side by side, optionally
/// cropped to a centred window. Shared by the CLI and the service so an
/// HTTP job and a command-line run over the same spec see the same input.
pub fn build_clip(kind: DesignKind, count: usize, crop: Option<f64>) -> Clip {
    let tiles: Vec<Clip> = design_tiles(kind, count.max(1)).collect();
    let tile_w = tiles[0].width();
    let tile_h = tiles[0].height();
    let mut shapes = Vec::new();
    for (i, tile) in tiles.iter().enumerate() {
        let dx = cardopc_geometry::Point::new(i as f64 * tile_w, 0.0);
        shapes.extend(tile.targets().iter().map(|t| t.translated(dx)));
    }
    let clip = Clip::new(
        format!("{}x{}", kind.name(), count.max(1)),
        tile_w * count.max(1) as f64,
        tile_h,
        shapes,
    );
    match crop {
        Some(size) => {
            let origin = cardopc_geometry::Point::new(
                ((clip.width() - size) * 0.5).max(0.0),
                ((clip.height() - size) * 0.5).max(0.0),
            );
            let name = format!("{}@{}", clip.name(), size);
            clip.crop_intersecting(origin, size, size, name)
        }
        None => clip,
    }
}

fn parse_tiling(tiling: &Json) -> Result<TilingConfig, BadRequest> {
    let Json::Obj(_) = tiling else {
        return Err("'tiling' must be an object".into());
    };
    reject_unknown(tiling, &["tile", "halo"])?;
    let tile_size = match tiling.get("tile") {
        None => 4096.0,
        Some(v) => v.as_f64().ok_or("'tiling.tile' must be a number")?,
    };
    let halo = match tiling.get("halo") {
        None => 1024.0,
        Some(v) => v.as_f64().ok_or("'tiling.halo' must be a number")?,
    };
    if !tile_size.is_finite() || tile_size <= 0.0 {
        return Err("'tiling.tile' must be positive and finite".into());
    }
    if !halo.is_finite() || halo < 0.0 {
        return Err("'tiling.halo' must be non-negative and finite".into());
    }
    Ok(TilingConfig { tile_size, halo })
}

/// Numeric `OpcConfig` overrides the wire format accepts on top of a
/// preset. Deliberately a subset: the exotic fields (corner pull, relax
/// schedule, conventions) stay preset-controlled.
const OPC_KEYS: [&str; 7] = [
    "preset",
    "pitch",
    "iterations",
    "move_step",
    "l_c",
    "l_u",
    "decay_at",
];

fn parse_opc(opc: &Json) -> Result<OpcConfig, BadRequest> {
    let Json::Obj(_) = opc else {
        return Err("'opc' must be an object".into());
    };
    reject_unknown(opc, &OPC_KEYS)?;
    let mut config = match opc.get("preset") {
        None => OpcConfig::large_scale(),
        Some(v) => match v.as_str().ok_or("'opc.preset' must be a string")? {
            "via" => OpcConfig::via(),
            "metal" => OpcConfig::metal(),
            "large_scale" => OpcConfig::large_scale(),
            other => return Err(format!("unknown opc preset '{other}'")),
        },
    };
    if let Some(v) = opc.get("pitch") {
        config.pitch = v.as_f64().ok_or("'opc.pitch' must be a number")?;
    }
    if let Some(v) = opc.get("iterations") {
        config.iterations = v.as_usize().ok_or("'opc.iterations' must be an integer")?;
    }
    if let Some(v) = opc.get("move_step") {
        config.move_step = v.as_f64().ok_or("'opc.move_step' must be a number")?;
    }
    if let Some(v) = opc.get("l_c") {
        config.l_c = v.as_f64().ok_or("'opc.l_c' must be a number")?;
    }
    if let Some(v) = opc.get("l_u") {
        config.l_u = v.as_f64().ok_or("'opc.l_u' must be a number")?;
    }
    if let Some(v) = opc.get("decay_at") {
        config.decay_at = v.as_usize().ok_or("'opc.decay_at' must be an integer")?;
    }
    Ok(config)
}

/// Non-panicking mirror of [`OpcConfig::assert_valid`] (plus finiteness,
/// which the panic path trusts the compiler's literals for).
pub fn validate(config: &OpcConfig) -> Result<(), BadRequest> {
    let finite_pos = |name: &str, v: f64| {
        if v.is_finite() && v > 0.0 {
            Ok(())
        } else {
            Err(format!("'opc.{name}' must be positive and finite"))
        }
    };
    finite_pos("l_c", config.l_c)?;
    finite_pos("l_u", config.l_u)?;
    finite_pos("move_step", config.move_step)?;
    finite_pos("pitch", config.pitch)?;
    if config.iterations == 0 {
        return Err("'opc.iterations' must be at least 1".into());
    }
    if !(config.decay_factor > 0.0 && config.decay_factor <= 1.0) {
        return Err("'opc.decay_factor' must be in (0, 1]".into());
    }
    if !config.tension.is_finite() {
        return Err("'opc.tension' must be finite".into());
    }
    if config.samples_per_segment == 0 {
        return Err("'opc.samples_per_segment' must be at least 1".into());
    }
    if !config.epe_search.is_finite() || config.epe_search <= 0.0 {
        return Err("'opc.epe_search' must be positive".into());
    }
    if config.dose_delta.is_nan() || config.dose_delta < 0.0 {
        return Err("'opc.dose_delta' must be non-negative".into());
    }
    Ok(())
}

/// Validates a `run_dir` name: a single path component of safe
/// characters, so a request can never escape the server's run root.
fn sanitize_run_dir(name: &str) -> Result<String, BadRequest> {
    if name.is_empty() || name.len() > 128 {
        return Err("'run_dir' must be 1..=128 characters".into());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
    {
        return Err("'run_dir' may only contain [A-Za-z0-9._-]".into());
    }
    if name.starts_with('.') {
        return Err("'run_dir' must not start with '.'".into());
    }
    Ok(name.to_string())
}

/// Rejects object members outside `allowed` (strict wire format).
fn reject_unknown(obj: &Json, allowed: &[&str]) -> Result<(), BadRequest> {
    if let Json::Obj(members) = obj {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown field '{key}'"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn root() -> PathBuf {
        PathBuf::from("/tmp/run-root")
    }

    #[test]
    fn minimal_job_parses_with_defaults() {
        let spec = parse_job(r#"{"design": {"kind": "gcd"}}"#, &root()).unwrap();
        assert_eq!(spec.config.tiling.tile_size, 4096.0);
        assert_eq!(spec.config.tiling.halo, 1024.0);
        assert_eq!(spec.config.opc.iterations, 10);
        assert!(spec.config.run_dir.is_none());
        assert!(spec.config.max_tiles.is_none());
        assert!(spec.cache, "cache defaults on");
        assert!(!spec.clip.targets().is_empty());
    }

    #[test]
    fn cache_opt_out_parses() {
        let spec = parse_job(r#"{"design": {"kind": "gcd"}, "cache": false}"#, &root()).unwrap();
        assert!(!spec.cache);
    }

    #[test]
    fn full_job_parses() {
        let body = r#"{
            "design": {"kind": "gcd", "tiles": 1, "crop": 2048.0},
            "tiling": {"tile": 1024.0, "halo": 512.0},
            "opc": {"preset": "large_scale", "pitch": 16.0, "iterations": 4},
            "run_dir": "smoke",
            "max_tiles": 3
        }"#;
        let spec = parse_job(body, &root()).unwrap();
        assert_eq!(spec.config.tiling.tile_size, 1024.0);
        assert_eq!(spec.config.opc.pitch, 16.0);
        assert_eq!(spec.config.opc.iterations, 4);
        assert_eq!(spec.config.run_dir, Some(root().join("smoke")));
        assert_eq!(spec.config.max_tiles, Some(3));
    }

    #[test]
    fn rejections_cover_every_field() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{}"#,
            r#"{"design": {"kind": "warp-core"}}"#,
            r#"{"design": {"kind": "gcd", "tiles": 0}}"#,
            r#"{"design": {"kind": "gcd", "tiles": 1000}}"#,
            r#"{"design": {"kind": "gcd", "crop": -5}}"#,
            r#"{"design": {"kind": "gcd"}, "tiling": {"tile": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "tiling": {"halo": -1}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"preset": "nope"}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"pitch": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"iterations": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"mystery": 1}}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": "../escape"}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": ""}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": ".hidden"}"#,
            r#"{"design": {"kind": "gcd"}, "max_tiles": 0}"#,
            r#"{"design": {"kind": "gcd"}, "cache": "yes"}"#,
            r#"{"design": {"kind": "gcd"}, "surprise": true}"#,
        ] {
            assert!(parse_job(bad, &root()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn run_dir_names_stay_inside_the_root() {
        let spec = parse_job(
            r#"{"design": {"kind": "gcd"}, "run_dir": "job_7.retry-2"}"#,
            &root(),
        )
        .unwrap();
        assert_eq!(spec.config.run_dir, Some(root().join("job_7.retry-2")));
    }

    #[test]
    fn validate_mirrors_assert_valid() {
        validate(&OpcConfig::via()).unwrap();
        validate(&OpcConfig::metal()).unwrap();
        validate(&OpcConfig::large_scale()).unwrap();
        let mut c = OpcConfig::via();
        c.move_step = 0.0;
        assert!(validate(&c).is_err());
        c = OpcConfig::via();
        c.pitch = f64::NAN;
        assert!(validate(&c).is_err());
    }
}
