//! Wire format of the correction service: JSON job requests parsed into
//! runtime inputs, with *non-panicking* validation.
//!
//! The parsing/validation core (design recipe, tiling, OPC presets and
//! overrides, run-dir sanitisation) lives in [`cardopc_fleet::spec`] so
//! the HTTP job format and the fleet work-unit format can never drift
//! apart; this module re-exports it and adds the job-level envelope
//! (`run_dir`, `max_tiles`, `cache`).
//!
//! A job request looks like:
//!
//! ```json
//! {
//!   "design": {"kind": "gcd", "tiles": 1, "crop": 2048.0},
//!   "tiling": {"tile": 1024.0, "halo": 512.0},
//!   "opc": {"preset": "large_scale", "pitch": 8.0, "iterations": 4},
//!   "run_dir": "smoke",
//!   "max_tiles": 3,
//!   "cache": true
//! }
//! ```
//!
//! `design` is required; everything else defaults to the CLI's `--quick`
//! geometry-free equivalents (`large_scale` preset, 4096 nm tiles,
//! 1024 nm halo). `run_dir` is a *name*, resolved under the server's run
//! root — submitting the same name again resumes that checkpoint.
//!
//! A job may instead reference an uploaded GDSII file:
//!
//! ```json
//! {"design": {"gds": "chip.gds", "layer": "5:0", "crop": 4096.0}}
//! ```
//!
//! `design.gds` is a file *name* resolved under the same run root (the
//! same character set and confinement rules as `run_dir`), so a request
//! can never read a file outside the server's directory.

pub use cardopc_fleet::spec::{build_clip, validate, BadRequest, MAX_DESIGN_TILES};
use cardopc_fleet::spec::{
    parse_design_with_root, parse_opc, parse_tiling, reject_unknown, sanitize_run_dir,
};
use cardopc_fleet::WorkSpec;
use cardopc_json::Json;
use cardopc_layout::Clip;
use cardopc_opc::OpcConfig;
use cardopc_runtime::{RunConfig, TilingConfig};
use std::path::Path;

/// Most tiles a single job's partition may hold. Generated designs are
/// bounded by `MAX_DESIGN_TILES`, but an uploaded GDS can claim any die
/// size — without a cap a corrupt file could demand a multi-metre
/// partition and stall the executor before the first tile corrects.
pub const MAX_JOB_TILES: usize = 65_536;

/// A validated job specification.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The input clip.
    pub clip: Clip,
    /// The runtime configuration (with `run_dir` already resolved under
    /// the server's run root).
    pub config: RunConfig,
    /// The `run_dir` name as submitted, if any (echoed in job status).
    pub run_dir_name: Option<String>,
    /// Whether this job may use the server's shared tile cache (default
    /// `true`; `"cache": false` opts a single job out).
    pub cache: bool,
    /// The same job as a fleet work unit, for distribution to registered
    /// workers (every HTTP job is expressible as one — the clip above is
    /// `work.build_clip()`).
    pub work: WorkSpec,
}

/// Parses and validates a `POST /v1/jobs` body.
///
/// # Errors
///
/// A human-readable message for any malformed, out-of-range, or unknown
/// field; the caller answers 400 and never constructs runtime state.
pub fn parse_job(body: &str, run_root: &Path) -> Result<JobSpec, BadRequest> {
    let json = Json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
    let Json::Obj(_) = &json else {
        return Err("request body must be a JSON object".into());
    };
    reject_unknown(
        &json,
        &["design", "tiling", "opc", "run_dir", "max_tiles", "cache"],
    )?;

    // GDS paths in the wire format are names resolved under the server's
    // run root, exactly like `run_dir` — a request can never read outside
    // it.
    let design = parse_design_with_root(
        json.get("design")
            .ok_or("missing required field 'design'")?,
        Some(run_root),
    )?;
    let clip = design.build_clip()?;

    let tiling = match json.get("tiling") {
        Some(t) => parse_tiling(t)?,
        None => TilingConfig {
            tile_size: 4096.0,
            halo: 1024.0,
        },
    };

    let tiles_x = (clip.width() / tiling.tile_size).ceil().max(1.0);
    let tiles_y = (clip.height() / tiling.tile_size).ceil().max(1.0);
    if tiles_x * tiles_y > MAX_JOB_TILES as f64 {
        return Err(format!(
            "design and tiling produce {tiles_x}x{tiles_y} tiles \
             (cap {MAX_JOB_TILES}); enlarge 'tiling.tile' or crop the design"
        ));
    }

    let opc = match json.get("opc") {
        Some(o) => parse_opc(o)?,
        None => OpcConfig::large_scale(),
    };
    validate(&opc)?;

    let run_dir_name = match json.get("run_dir") {
        None | Some(Json::Null) => None,
        Some(v) => Some(sanitize_run_dir(
            v.as_str().ok_or("'run_dir' must be a string")?,
        )?),
    };
    let max_tiles = match json.get("max_tiles") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let n = v
                .as_usize()
                .ok_or("'max_tiles' must be a non-negative integer")?;
            if n == 0 {
                return Err("'max_tiles' must be at least 1".into());
            }
            Some(n)
        }
    };
    let cache = match json.get("cache") {
        None | Some(Json::Null) => true,
        Some(Json::Bool(b)) => *b,
        Some(_) => return Err("'cache' must be a boolean".into()),
    };

    Ok(JobSpec {
        clip,
        config: RunConfig {
            opc: opc.clone(),
            tiling,
            run_dir: run_dir_name.as_ref().map(|name| run_root.join(name)),
            max_tiles,
        },
        run_dir_name,
        cache,
        work: WorkSpec {
            design,
            tiling,
            opc,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn root() -> PathBuf {
        PathBuf::from("/tmp/run-root")
    }

    #[test]
    fn minimal_job_parses_with_defaults() {
        let spec = parse_job(r#"{"design": {"kind": "gcd"}}"#, &root()).unwrap();
        assert_eq!(spec.config.tiling.tile_size, 4096.0);
        assert_eq!(spec.config.tiling.halo, 1024.0);
        assert_eq!(spec.config.opc.iterations, 10);
        assert!(spec.config.run_dir.is_none());
        assert!(spec.config.max_tiles.is_none());
        assert!(spec.cache, "cache defaults on");
        assert!(!spec.clip.targets().is_empty());
        assert_eq!(spec.work.opc, spec.config.opc, "work spec mirrors the job");
        assert_eq!(spec.work.build_clip().unwrap().name(), spec.clip.name());
    }

    #[test]
    fn cache_opt_out_parses() {
        let spec = parse_job(r#"{"design": {"kind": "gcd"}, "cache": false}"#, &root()).unwrap();
        assert!(!spec.cache);
    }

    #[test]
    fn full_job_parses() {
        let body = r#"{
            "design": {"kind": "gcd", "tiles": 1, "crop": 2048.0},
            "tiling": {"tile": 1024.0, "halo": 512.0},
            "opc": {"preset": "large_scale", "pitch": 16.0, "iterations": 4},
            "run_dir": "smoke",
            "max_tiles": 3
        }"#;
        let spec = parse_job(body, &root()).unwrap();
        assert_eq!(spec.config.tiling.tile_size, 1024.0);
        assert_eq!(spec.config.opc.pitch, 16.0);
        assert_eq!(spec.config.opc.iterations, 4);
        assert_eq!(spec.config.run_dir, Some(root().join("smoke")));
        assert_eq!(spec.config.max_tiles, Some(3));
    }

    #[test]
    fn rejections_cover_every_field() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{}"#,
            r#"{"design": {"kind": "warp-core"}}"#,
            r#"{"design": {"kind": "gcd", "tiles": 0}}"#,
            r#"{"design": {"kind": "gcd", "tiles": 1000}}"#,
            r#"{"design": {"kind": "gcd", "crop": -5}}"#,
            r#"{"design": {"kind": "gcd"}, "tiling": {"tile": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "tiling": {"halo": -1}}"#,
            // Uncropped gcd at 1 nm tiles → 30k×30k tiles, over the cap.
            r#"{"design": {"kind": "gcd"}, "tiling": {"tile": 1.0}}"#,
            r#"{"design": {"gds": "../escape.gds"}}"#,
            r#"{"design": {"gds": "nonexistent.gds"}}"#,
            r#"{"design": {"gds": "a.gds", "layer": "bogus"}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"preset": "nope"}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"pitch": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"iterations": 0}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"mystery": 1}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"precision": "f16"}}"#,
            r#"{"design": {"kind": "gcd"}, "opc": {"precision": 32}}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": "../escape"}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": ""}"#,
            r#"{"design": {"kind": "gcd"}, "run_dir": ".hidden"}"#,
            r#"{"design": {"kind": "gcd"}, "max_tiles": 0}"#,
            r#"{"design": {"kind": "gcd"}, "cache": "yes"}"#,
            r#"{"design": {"kind": "gcd"}, "surprise": true}"#,
        ] {
            assert!(parse_job(bad, &root()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn precision_selects_the_simulation_backend() {
        use cardopc_litho::Precision;
        let spec = parse_job(r#"{"design": {"kind": "gcd"}}"#, &root()).unwrap();
        assert_eq!(spec.config.opc.precision, Precision::F64, "default is f64");
        let spec = parse_job(
            r#"{"design": {"kind": "gcd"}, "opc": {"precision": "f32"}}"#,
            &root(),
        )
        .unwrap();
        assert_eq!(spec.config.opc.precision, Precision::F32);
        assert_eq!(spec.work.opc.precision, Precision::F32);
        // The rejection message names the field so a 400 is actionable.
        let err = parse_job(
            r#"{"design": {"kind": "gcd"}, "opc": {"precision": "f16"}}"#,
            &root(),
        )
        .unwrap_err();
        assert!(err.contains("'opc.precision'"), "{err:?}");
    }

    #[test]
    fn run_dir_names_stay_inside_the_root() {
        let spec = parse_job(
            r#"{"design": {"kind": "gcd"}, "run_dir": "job_7.retry-2"}"#,
            &root(),
        )
        .unwrap();
        assert_eq!(spec.config.run_dir, Some(root().join("job_7.retry-2")));
    }

    #[test]
    fn validate_mirrors_assert_valid() {
        validate(&OpcConfig::via()).unwrap();
        validate(&OpcConfig::metal()).unwrap();
        validate(&OpcConfig::large_scale()).unwrap();
        let mut c = OpcConfig::via();
        c.move_step = 0.0;
        assert!(validate(&c).is_err());
        c = OpcConfig::via();
        c.pitch = f64::NAN;
        assert!(validate(&c).is_err());
    }
}
