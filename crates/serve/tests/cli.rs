//! End-to-end tests of the `cardopc` binary: flag handling contracts
//! (exit codes, usage text) and the GDS ingestion round trip —
//! a generated design exported with `--write-target-gds` and re-run from
//! that file must reproduce the direct run's stable manifest exactly.

use std::path::Path;
use std::process::{Command, Output};

fn cardopc(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cardopc"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cardopc-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage_and_exits_zero() {
    let dir = tempdir("help");
    // Help is success in every mode: the user got what they asked for.
    for args in [
        &["--help"][..],
        &["-h"][..],
        &["serve", "--help"][..],
        &["worker", "-h"][..],
    ] {
        let out = cardopc(args, &dir);
        assert!(out.status.success(), "{args:?}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("USAGE"), "{args:?}: {text}");
        assert!(text.contains("--design"), "{args:?}: {text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_prints_package_version_and_exits_zero() {
    let dir = tempdir("version");
    for args in [
        &["--version"][..],
        &["serve", "--version"][..],
        &["worker", "--version"][..],
    ] {
        let out = cardopc(args, &dir);
        assert!(out.status.success(), "{args:?}: {}", stderr(&out));
        assert_eq!(
            stdout(&out).trim(),
            concat!("cardopc ", env!("CARGO_PKG_VERSION")),
            "{args:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_print_usage_and_exit_nonzero() {
    let dir = tempdir("unknown");
    for args in [
        &["--bogus"][..],
        &["serve", "--bogus"][..],
        &["worker", "--bogus"][..],
    ] {
        let out = cardopc(args, &dir);
        assert!(!out.status.success(), "{args:?} should fail");
        let text = stderr(&out);
        assert!(text.contains("unknown flag '--bogus'"), "{args:?}: {text}");
        assert!(text.contains("USAGE"), "{args:?}: {text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_design_flags_exit_nonzero_with_actionable_messages() {
    let dir = tempdir("baddesign");
    for (args, needle) in [
        (&["--design", "warp-core"][..], "unknown design"),
        (
            &["--design", "chip.gds", "--design-tiles", "2"][..],
            "synthetic designs only",
        ),
        (
            &["--design", "gcd", "--layer", "5"][..],
            "--layer applies to GDS designs",
        ),
        (&["--layer", "bogus", "--design", "a.gds"][..], "--layer"),
        (&["--design", "missing.gds"][..], "missing.gds"),
    ] {
        let out = cardopc(args, &dir);
        assert!(!out.status.success(), "{args:?} should fail");
        let text = stderr(&out);
        assert!(text.contains(needle), "{args:?}: {text}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full real-design pipeline, as a user would drive it:
///
/// 1. Correct a generated design directly, exporting the pre-OPC target
///    as GDSII and the corrected mask as GDSII.
/// 2. Correct the *exported GDS file* with identical parameters.
/// 3. The two runs' timing-free manifests must be byte-identical (GDS
///    ingestion is lossless), and the mask export must be deterministic.
#[test]
fn gds_ingested_run_matches_direct_run_byte_for_byte() {
    let dir = tempdir("roundtrip");
    let params = [
        "--crop",
        "1024",
        "--tile",
        "512",
        "--halo",
        "256",
        "--pitch",
        "16",
        "--iterations",
        "2",
        "--threads",
        "2",
    ];

    let mut direct = vec![
        "--design",
        "gcd",
        "--run-dir",
        "direct",
        "--write-target-gds",
        "design.gds",
        "--out-gds",
        "direct-mask.gds",
    ];
    direct.extend_from_slice(&params);
    let out = cardopc(&direct, &dir);
    assert!(out.status.success(), "direct run: {}", stderr(&out));
    assert!(stdout(&out).contains("executed"), "{}", stdout(&out));

    // The exported design is already cropped and rebased; no --crop here.
    let mut gds = vec![
        "--design",
        "design.gds",
        "--run-dir",
        "gdsrun",
        "--out-gds",
        "gds-mask.gds",
    ];
    gds.extend_from_slice(&params[2..]); // skip --crop 1024
    let out = cardopc(&gds, &dir);
    assert!(out.status.success(), "gds run: {}", stderr(&out));

    let direct_manifest = std::fs::read(dir.join("direct/manifest.stable.json")).unwrap();
    let gds_manifest = std::fs::read(dir.join("gdsrun/manifest.stable.json")).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&direct_manifest),
        String::from_utf8_lossy(&gds_manifest),
        "GDS ingestion changed the correction"
    );

    let direct_mask = std::fs::read(dir.join("direct-mask.gds")).unwrap();
    let gds_mask = std::fs::read(dir.join("gds-mask.gds")).unwrap();
    assert!(!direct_mask.is_empty());
    assert_eq!(direct_mask, gds_mask, "mask export is not deterministic");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--layer` steers which shapes a GDS run corrects: asking for a layer
/// the file does not use is a clean error, and the marker layer (255) is
/// never a target.
#[test]
fn layer_filter_selects_targets_from_gds() {
    let dir = tempdir("layerpick");
    let out = cardopc(
        &[
            "--design",
            "gcd",
            "--crop",
            "768",
            "--write-target-gds",
            "design.gds",
            "--tile",
            "512",
            "--halo",
            "256",
            "--pitch",
            "16",
            "--iterations",
            "1",
            "--max-tiles",
            "1",
            "--threads",
            "1",
        ],
        &dir,
    );
    assert!(out.status.success(), "{}", stderr(&out));

    let out = cardopc(&["--design", "design.gds", "--layer", "42"], &dir);
    assert!(!out.status.success(), "layer 42 holds no shapes");
    assert!(stderr(&out).contains("42"), "{}", stderr(&out));
    let _ = std::fs::remove_dir_all(&dir);
}
