//! End-to-end tests of the correction service over real TCP sockets.
//!
//! Every test starts a real [`Server`] on an ephemeral port and talks to
//! it through the in-repo [`client`] — the same wire path production
//! traffic takes. The headline assertion: a job's timing-free manifest
//! fetched over HTTP is **byte-identical** to a direct
//! `cardopc-runtime::run_clip` of the same spec, including with a second
//! job running concurrently.

use cardopc_geometry::SplitMix64;
use cardopc_json::Json;
use cardopc_litho::WorkerPool;
use cardopc_runtime::run_clip;
use cardopc_serve::{client, wire, ServeConfig, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A fast 2×2-tile job: 1024 nm gcd crop, 512 nm tiles + 256 nm halo →
/// 1024 nm windows on 64² grids at pitch 16.
const SMOKE_JOB: &str = r#"{
    "design": {"kind": "gcd", "crop": 1024.0},
    "tiling": {"tile": 512.0, "halo": 256.0},
    "opc": {"preset": "large_scale", "pitch": 16.0, "iterations": 3}
}"#;

/// A second, different job for concurrency tests (same engine extent, so
/// the shared cache is actually exercised across jobs).
const AES_JOB: &str = r#"{
    "design": {"kind": "aes", "crop": 1024.0},
    "tiling": {"tile": 512.0, "halo": 256.0},
    "opc": {"preset": "large_scale", "pitch": 16.0, "iterations": 3}
}"#;

/// A 4×4-tile job (16 tiles, 768 nm windows) — enough tile boundaries
/// that a cancel reliably lands mid-run.
fn slow_job(run_dir: &str) -> String {
    format!(
        r#"{{
            "design": {{"kind": "gcd", "crop": 1024.0}},
            "tiling": {{"tile": 256.0, "halo": 256.0}},
            "opc": {{"preset": "large_scale", "pitch": 16.0, "iterations": 4}},
            "run_dir": "{run_dir}"
        }}"#
    )
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cardopc-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn start(tag: &str, max_queued: usize, max_inflight: usize) -> (Server, SocketAddr, PathBuf) {
    start_retaining(tag, max_queued, max_inflight, 256)
}

fn start_retaining(
    tag: &str,
    max_queued: usize,
    max_inflight: usize,
    retain_terminal: usize,
) -> (Server, SocketAddr, PathBuf) {
    let root = temp_root(tag);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_queued,
        max_inflight,
        retain_terminal,
        threads: Some(2),
        run_root: root.clone(),
        ..ServeConfig::default()
    })
    .expect("server starts on an ephemeral port");
    let addr = server.local_addr();
    (server, addr, root)
}

/// Submits a job, asserting admission, and returns its id.
fn submit(addr: SocketAddr, body: &str) -> String {
    let response = client::post_json(addr, "/v1/jobs", body).unwrap();
    assert_eq!(response.status, 201, "submit: {}", response.body_str());
    let doc = response.json().unwrap();
    doc.get("id").unwrap().as_str().unwrap().to_string()
}

/// Polls the job until `stop(status)` returns true, then returns the
/// status document. Panics after `timeout`.
fn poll_until(addr: SocketAddr, id: &str, timeout: Duration, stop: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + timeout;
    loop {
        let response = client::get(addr, &format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(response.status, 200, "status: {}", response.body_str());
        let doc = response.json().unwrap();
        if stop(&doc) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting on {id}: {}",
            doc.to_string_compact()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn state(doc: &Json) -> &str {
    doc.get("state").unwrap().as_str().unwrap()
}

fn wait_terminal(addr: SocketAddr, id: &str) -> Json {
    poll_until(addr, id, Duration::from_secs(300), |doc| {
        matches!(state(doc), "done" | "failed" | "cancelled")
    })
}

/// Runs the same spec directly through the runtime (no HTTP, no
/// checkpointing) and returns the timing-free manifest JSON.
fn direct_manifest(body: &str, workers: usize) -> String {
    let spec = wire::parse_job(body, &temp_root("direct-unused")).unwrap();
    let mut config = spec.config;
    config.run_dir = None;
    let pool = WorkerPool::new(workers);
    let outcome = run_clip(&spec.clip, &config, &pool).unwrap();
    assert!(outcome.complete);
    outcome.manifest.to_json(false)
}

/// Fetches a done job's result and returns the embedded manifest subtree,
/// re-serialised (bit-exact round-trip through the hand-rolled JSON).
fn result_manifest(addr: SocketAddr, id: &str) -> String {
    let response = client::get(addr, &format!("/v1/jobs/{id}/result")).unwrap();
    assert_eq!(response.status, 200, "result: {}", response.body_str());
    let doc = response.json().unwrap();
    assert_eq!(doc.get("complete").unwrap().as_bool(), Some(true));
    assert!(doc.get("contours").unwrap().get("mains").is_some());
    doc.get("manifest").unwrap().to_string_compact()
}

#[test]
fn smoke_concurrent_jobs_match_direct_runs_byte_for_byte() {
    let (server, addr, root) = start("smoke", 4, 2);

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().unwrap().get("ok").unwrap().as_bool(),
        Some(true)
    );

    // Two different jobs in flight at once (max_inflight = 2).
    let gcd = submit(addr, SMOKE_JOB);
    let aes = submit(addr, AES_JOB);
    let gcd_status = wait_terminal(addr, &gcd);
    let aes_status = wait_terminal(addr, &aes);
    assert_eq!(state(&gcd_status), "done", "{gcd_status:?}");
    assert_eq!(state(&aes_status), "done", "{aes_status:?}");

    // Progress reached the partition size (2×2 tiles).
    let progress = gcd_status.get("progress").unwrap();
    assert_eq!(progress.get("completed").unwrap().as_usize(), Some(4));
    assert_eq!(progress.get("total").unwrap().as_usize(), Some(4));

    // The HTTP result manifests are byte-identical to direct runtime runs
    // — despite concurrency, a different worker count, and the wire trip.
    assert_eq!(result_manifest(addr, &gcd), direct_manifest(SMOKE_JOB, 1));
    assert_eq!(result_manifest(addr, &aes), direct_manifest(AES_JOB, 3));

    // The smoke traffic shows up in /metrics, including nonzero tile
    // latency histograms.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert!(text.contains("cardopc_jobs_submitted_total 2"), "{text}");
    assert!(text.contains("cardopc_jobs_done_total 2"), "{text}");
    let count = text
        .lines()
        .find_map(|l| l.strip_prefix("cardopc_tile_seconds_count "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert!(count >= 8, "expected 8 executed tiles, saw {count}");

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn bounded_admission_rejects_with_429_and_retry_after() {
    let (server, addr, root) = start("backpressure", 1, 1);

    // First job occupies the single executor...
    let running = submit(addr, &slow_job("bp-running"));
    poll_until(addr, &running, Duration::from_secs(60), |doc| {
        state(doc) != "queued"
    });
    // ...second fills the queue...
    let queued = submit(addr, &slow_job("bp-queued"));
    // ...third is shed at the door.
    let rejected = client::post_json(addr, "/v1/jobs", &slow_job("bp-rejected")).unwrap();
    assert_eq!(rejected.status, 429, "{}", rejected.body_str());
    assert!(
        rejected.header("retry-after").is_some(),
        "429 must carry Retry-After"
    );

    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    assert!(
        metrics.contains("cardopc_admission_rejected_total 1"),
        "{metrics}"
    );

    // Cancel both admitted jobs so teardown is fast.
    for id in [&running, &queued] {
        let response = client::post_json(addr, &format!("/v1/jobs/{id}/cancel"), "").unwrap();
        assert_eq!(response.status, 200);
    }
    assert_eq!(state(&wait_terminal(addr, &queued)), "cancelled");
    assert_eq!(state(&wait_terminal(addr, &running)), "cancelled");

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn cancel_leaves_a_resumable_checkpoint() {
    let (server, addr, root) = start("cancel", 4, 1);
    let body = slow_job("resume-me");

    // Cancel mid-run: after at least one tile checkpointed, before all 16.
    let first = submit(addr, &body);
    poll_until(addr, &first, Duration::from_secs(120), |doc| {
        doc.get("progress")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_usize()
            .unwrap()
            >= 1
    });
    let response = client::post_json(addr, &format!("/v1/jobs/{first}/cancel"), "").unwrap();
    assert_eq!(response.status, 200);
    let cancelled = wait_terminal(addr, &first);
    assert_eq!(state(&cancelled), "cancelled", "{cancelled:?}");

    // The run directory holds the finished tiles' records.
    let records = std::fs::read_to_string(root.join("resume-me").join("tiles.jsonl")).unwrap();
    let checkpointed = records.lines().count();
    assert!(checkpointed >= 1, "cancelled run must keep its checkpoints");

    // Resubmitting the identical spec resumes those tiles and completes.
    let second = submit(addr, &body);
    let done = wait_terminal(addr, &second);
    assert_eq!(state(&done), "done", "{done:?}");
    let resumed = done
        .get("progress")
        .unwrap()
        .get("resumed")
        .unwrap()
        .as_usize()
        .unwrap();
    assert!(
        resumed >= checkpointed.min(16),
        "resume must reuse the cancelled run's tiles (resumed {resumed})"
    );

    // And the cancel/resume detour is invisible in the manifest.
    assert_eq!(result_manifest(addr, &second), direct_manifest(&body, 2));

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn malformed_requests_never_panic_the_server() {
    let (server, addr, root) = start("fuzz", 2, 1);

    // Hand-picked nasties covering each parser rejection path.
    let nasties: Vec<Vec<u8>> = vec![
        b"garbage\r\n\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"GET /healthz HTTP/2.0\r\n\r\n".to_vec(),
        b"get /healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"GET healthz HTTP/1.1\r\n\r\n".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: nope\r\n\r\n".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 7\r\n\r\n\xff\xfe\x00bad".to_vec(),
        b"GET /healthz HTTP/1.1\r\nno-colon\r\n\r\n".to_vec(),
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}".to_vec(),
        format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(20_000)).into_bytes(),
        // Deep nesting: a megabyte of '[' used to recurse once per byte
        // and overflow the connection thread's stack (a process abort,
        // not a panic); the parser's depth cap must answer 400 instead.
        deep_nesting_request("[", 1_000_000),
        deep_nesting_request("{\"k\":", 400_000),
    ];
    for raw in &nasties {
        let reply = client::send_raw(addr, raw).unwrap();
        assert_status_is_sane(&reply, raw);
    }

    // Deterministic random mutations of a valid request.
    let template = format!(
        "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
        SMOKE_JOB.len(),
        SMOKE_JOB
    )
    .into_bytes();
    let mut rng = SplitMix64::new(0xcafe);
    for _ in 0..48 {
        let mut mutated = template.clone();
        for _ in 0..(1 + rng.next_u64() % 8) {
            let kind = rng.next_u64() % 3;
            let at = (rng.next_u64() as usize) % mutated.len();
            match kind {
                0 => mutated[at] = (rng.next_u64() & 0xff) as u8,
                1 => mutated.truncate(at),
                _ => mutated.insert(at, (rng.next_u64() & 0xff) as u8),
            }
            if mutated.is_empty() {
                break;
            }
        }
        let reply = client::send_raw(addr, &mutated).unwrap();
        assert_status_is_sane(&reply, &mutated);
    }

    // The server is still alive and sane afterwards.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    // Any job a mutation accidentally admitted must settle on its own.
    server.drain();

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

/// A `POST /v1/jobs` whose body is `unit` repeated `times` — a
/// pathologically deep JSON document within the 4 MB body limit.
fn deep_nesting_request(unit: &str, times: usize) -> Vec<u8> {
    let body = unit.repeat(times);
    format!(
        "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A reply to garbage must be either silence (peer-level drop) or a
/// well-formed HTTP response; a mutated-but-still-valid request may
/// legitimately succeed, so any status is acceptable — it just has to BE
/// a status.
fn assert_status_is_sane(reply: &[u8], sent: &[u8]) {
    if reply.is_empty() {
        return;
    }
    let head = String::from_utf8_lossy(&reply[..reply.len().min(64)]).into_owned();
    assert!(
        head.starts_with("HTTP/1.1 "),
        "non-HTTP reply {head:?} to {:?}",
        String::from_utf8_lossy(&sent[..sent.len().min(80)])
    );
    let status: u16 = head["HTTP/1.1 ".len()..]
        .split(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric status");
    assert!((100..600).contains(&status), "status {status}");
}

#[test]
fn terminal_jobs_are_deletable_and_evicted_beyond_the_retention_cap() {
    // Retain only one terminal job so eviction is observable quickly.
    let (server, addr, root) = start_retaining("retain", 4, 1, 1);

    // A running job cannot be deleted (409) — it must be cancelled first.
    let first = submit(addr, &slow_job("retain-first"));
    poll_until(addr, &first, Duration::from_secs(60), |doc| {
        state(doc) != "queued"
    });
    let refused = client::delete(addr, &format!("/v1/jobs/{first}")).unwrap();
    assert_eq!(refused.status, 409, "{}", refused.body_str());

    // Unknown methods on job paths are 405 (method known-bad), not 404.
    let put = client::request(addr, "PUT", &format!("/v1/jobs/{first}"), None).unwrap();
    assert_eq!(put.status, 405, "{}", put.body_str());
    let del_result = client::delete(addr, &format!("/v1/jobs/{first}/result")).unwrap();
    assert_eq!(del_result.status, 405, "{}", del_result.body_str());

    let cancel = client::post_json(addr, &format!("/v1/jobs/{first}/cancel"), "").unwrap();
    assert_eq!(cancel.status, 200);
    wait_terminal(addr, &first);

    // Terminal now: DELETE drops the record; a second DELETE is a 404.
    let deleted = client::delete(addr, &format!("/v1/jobs/{first}")).unwrap();
    assert_eq!(deleted.status, 200, "{}", deleted.body_str());
    assert_eq!(
        deleted.json().unwrap().get("deleted").unwrap().as_bool(),
        Some(true)
    );
    let gone = client::get(addr, &format!("/v1/jobs/{first}")).unwrap();
    assert_eq!(gone.status, 404, "{}", gone.body_str());
    let again = client::delete(addr, &format!("/v1/jobs/{first}")).unwrap();
    assert_eq!(again.status, 404, "{}", again.body_str());

    // Two more terminal jobs: with retain_terminal = 1 the older one is
    // evicted automatically once the newer finishes.
    let second = submit(addr, &slow_job("retain-second"));
    let cancel = client::post_json(addr, &format!("/v1/jobs/{second}/cancel"), "").unwrap();
    assert_eq!(cancel.status, 200);
    wait_terminal(addr, &second);
    let third = submit(addr, &slow_job("retain-third"));
    let cancel = client::post_json(addr, &format!("/v1/jobs/{third}/cancel"), "").unwrap();
    assert_eq!(cancel.status, 200);
    wait_terminal(addr, &third);

    let evicted = client::get(addr, &format!("/v1/jobs/{second}")).unwrap();
    assert_eq!(evicted.status, 404, "{}", evicted.body_str());
    let kept = client::get(addr, &format!("/v1/jobs/{third}")).unwrap();
    assert_eq!(kept.status, 200, "{}", kept.body_str());

    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    assert!(
        metrics.contains("cardopc_jobs_evicted_total 1"),
        "{metrics}"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn drain_stops_admission_and_settles_jobs() {
    let (server, addr, root) = start("drain", 4, 1);

    let job = submit(addr, SMOKE_JOB);
    let response = client::post_json(addr, "/admin/drain", "").unwrap();
    assert_eq!(response.status, 202);

    // New work is refused while draining — with a Retry-After, like the
    // 429 backpressure path, so well-behaved clients back off the same way.
    let refused = client::post_json(addr, "/v1/jobs", SMOKE_JOB).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body_str());
    assert!(
        refused.header("retry-after").is_some(),
        "503 draining must carry Retry-After"
    );
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(
        health.json().unwrap().get("draining").unwrap().as_bool(),
        Some(true)
    );

    // The admitted job settles (done if it outran the drain, cancelled
    // otherwise — drain cancels cooperatively at tile boundaries).
    let settled = wait_terminal(addr, &job);
    assert!(matches!(state(&settled), "done" | "cancelled"));

    // wait_drained returns promptly now that everything is terminal.
    server.wait_drained();

    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    assert!(
        metrics.contains("cardopc_drain_rejected_total 1"),
        "{metrics}"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

/// The value of a counter/gauge line in a `/metrics` rendering.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|v| v.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{metrics}"))
}

fn progress_cache_hits(doc: &Json) -> usize {
    doc.get("progress")
        .unwrap()
        .get("cache_hits")
        .unwrap()
        .as_usize()
        .unwrap()
}

#[test]
fn sequential_jobs_share_the_cache_across_jobs_and_restarts() {
    let root = temp_root("cache-e2e");
    let cache_dir = root.join("cache");
    let start_cached = |tag: &str| {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: Some(2),
            run_root: root.join(tag),
            cache_dir: Some(cache_dir.clone()),
            ..ServeConfig::default()
        })
        .expect("cached server starts")
    };

    // Job 1 populates the cache; job 2 (identical spec, same server)
    // replays every one of its 4 tiles from it.
    let server = start_cached("first");
    let addr = server.local_addr();
    let first = submit(addr, SMOKE_JOB);
    assert_eq!(state(&wait_terminal(addr, &first)), "done");
    let hits_after_first = metric_value(
        &client::get(addr, "/metrics").unwrap().body_str(),
        "cardopc_cache_hits_total ",
    );

    let second = submit(addr, SMOKE_JOB);
    let done = wait_terminal(addr, &second);
    assert_eq!(state(&done), "done", "{done:?}");
    assert_eq!(
        progress_cache_hits(&done),
        4,
        "second job must replay all tiles from the shared cache: {done:?}"
    );
    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    assert_eq!(
        metric_value(&metrics, "cardopc_cache_hits_total "),
        hits_after_first + 4,
        "cache hit counter must move with the second job"
    );
    assert!(metric_value(&metrics, "cardopc_cache_entries ") >= 1);
    drop(server);

    // A fresh server on the same cache_dir still replays: the cache
    // outlives the process, not just the job.
    let server = start_cached("second");
    let addr = server.local_addr();
    let third = submit(addr, SMOKE_JOB);
    let done = wait_terminal(addr, &third);
    assert_eq!(state(&done), "done", "{done:?}");
    assert_eq!(
        progress_cache_hits(&done),
        4,
        "restarted server must hit the on-disk cache: {done:?}"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn failed_jobs_surface_the_underlying_error_detail() {
    // Two executors so a second job can run into the first one's lock.
    let (server, addr, root) = start("failure-detail", 4, 2);
    let body = slow_job("lock-holder");

    // The holder acquires the run-directory lock...
    let holder = submit(addr, &body);
    poll_until(addr, &holder, Duration::from_secs(120), |doc| {
        doc.get("progress")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_usize()
            .unwrap()
            >= 1
    });
    // ...so an identical concurrent job fails — and the status document
    // must say *why*, not just "failed".
    let conflicting = submit(addr, &body);
    let failed = wait_terminal(addr, &conflicting);
    assert_eq!(state(&failed), "failed", "{failed:?}");
    let error = failed.get("error").unwrap().as_str().unwrap();
    assert!(
        error.contains("locked by live process"),
        "failed state must carry the runtime's own message, got {error:?}"
    );

    // The result endpoint's 409 carries the same detail.
    let result = client::get(addr, &format!("/v1/jobs/{conflicting}/result")).unwrap();
    assert_eq!(result.status, 409, "{}", result.body_str());
    assert!(
        result.body_str().contains("locked by live process"),
        "result 409 must explain the failure: {}",
        result.body_str()
    );

    let cancel = client::post_json(addr, &format!("/v1/jobs/{holder}/cancel"), "").unwrap();
    assert_eq!(cancel.status, 200);
    wait_terminal(addr, &holder);

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn registered_fleet_workers_run_jobs_byte_identically() {
    let (server, addr, root) = start("fleet", 4, 1);

    // Register two spawn-local worker processes over the wire.
    let created = client::post_json(addr, "/v1/workers", r#"{"spawn_local": 2}"#).unwrap();
    assert_eq!(created.status, 201, "{}", created.body_str());
    let doc = created.json().unwrap();
    assert_eq!(doc.get("total").unwrap().as_usize(), Some(2));

    // The registry lists them as healthy; bad registrations are rejected.
    let listing = client::get(addr, "/v1/workers").unwrap();
    assert_eq!(listing.status, 200);
    let listing = listing.json().unwrap();
    assert_eq!(listing.get("count").unwrap().as_usize(), Some(2));
    for worker in listing.get("workers").unwrap().as_arr().unwrap() {
        assert_eq!(worker.get("healthy").unwrap().as_bool(), Some(true));
    }
    let bad = client::post_json(addr, "/v1/workers", r#"{"nope": 1}"#).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body_str());
    let bad = client::post_json(addr, "/v1/workers", r#"{"spawn_local": 1, "addr": "x"}"#).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body_str());

    // A job now routes through the fleet — and the client cannot tell:
    // the result manifest is byte-identical to an in-process run.
    let job = submit(addr, SMOKE_JOB);
    let done = wait_terminal(addr, &job);
    assert_eq!(state(&done), "done", "{done:?}");
    assert_eq!(result_manifest(addr, &job), direct_manifest(SMOKE_JOB, 1));

    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    assert_eq!(metric_value(&metrics, "cardopc_fleet_jobs_total "), 1);
    assert_eq!(metric_value(&metrics, "cardopc_fleet_workers "), 2);
    assert!(
        metric_value(&metrics, "cardopc_fleet_tiles_dispatched_total ") >= 4,
        "{metrics}"
    );

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}

/// A GDS-file job referencing `name` in the run root: same tiling/OPC as
/// [`SMOKE_JOB`], capped at 4 tiles so a fuzz survivor stays cheap.
fn gds_job(name: &str) -> String {
    format!(
        r#"{{
            "design": {{"gds": "{name}"}},
            "tiling": {{"tile": 512.0, "halo": 256.0}},
            "opc": {{"preset": "large_scale", "pitch": 16.0, "iterations": 3}},
            "max_tiles": 4
        }}"#
    )
}

#[test]
fn gds_design_jobs_match_generated_runs_and_reject_corrupt_uploads() {
    use cardopc_layout::{generated_clip, write_clip_gds, DesignKind, TARGET_LAYER};

    let (server, addr, root) = start("gds", 64, 1);
    std::fs::create_dir_all(&root).unwrap();

    // Export SMOKE_JOB's generated design ("gcd", crop 1024) to a GDS
    // file in the run root — the upload convention.
    let clip = generated_clip(DesignKind::Gcd, 1, Some(1024.0));
    let bytes = write_clip_gds(&clip, TARGET_LAYER, 0).unwrap();
    std::fs::write(root.join("chip.gds"), &bytes).unwrap();

    // The ingested design corrects byte-identically to the generated
    // original: the GDS round trip is lossless end to end over HTTP.
    let id = submit(addr, &gds_job("chip.gds"));
    let done = wait_terminal(addr, &id);
    assert_eq!(state(&done), "done", "{done:?}");
    assert_eq!(result_manifest(addr, &id), direct_manifest(SMOKE_JOB, 1));

    // Bad references are client errors, not server errors.
    for bad in [
        r#"{"design": {"gds": "../escape.gds"}}"#,
        r#"{"design": {"gds": "missing.gds"}}"#,
        r#"{"design": {"gds": "chip.gds", "layer": "42"}}"#,
        r#"{"design": {"gds": "chip.gds", "layer": "bogus"}}"#,
        r#"{"design": {"gds": "chip.gds", "tiles": 2}}"#,
    ] {
        let resp = client::post_json(addr, "/v1/jobs", bad).unwrap();
        assert_eq!(resp.status, 400, "{bad}: {}", resp.body_str());
    }

    // Seeded corruption of the upload — truncations and byte flips. Every
    // submission must be answered 4xx (or admitted when the mutation left
    // the file valid); a 5xx means the reader panicked or hung the
    // executor, and the server must stay healthy throughout.
    let mut rng = SplitMix64::new(0x6D50BAD);
    let mut accepted = Vec::new();
    for case in 0..32usize {
        let mut mutated = bytes.clone();
        if case % 2 == 0 {
            let at = 1 + (rng.next_u64() as usize) % (mutated.len() - 1);
            mutated.truncate(at);
        } else {
            for _ in 0..1 + rng.next_u64() % 4 {
                let at = (rng.next_u64() as usize) % mutated.len();
                mutated[at] ^= (1 + rng.next_u64() % 255) as u8;
            }
        }
        let name = format!("fuzz-{case}.gds");
        std::fs::write(root.join(&name), &mutated).unwrap();
        // Survivors run a real correction, so keep them minimal: one
        // iteration, one tile.
        let body = format!(
            r#"{{
                "design": {{"gds": "{name}"}},
                "tiling": {{"tile": 512.0, "halo": 256.0}},
                "opc": {{"preset": "large_scale", "pitch": 16.0, "iterations": 1}},
                "max_tiles": 1
            }}"#
        );
        let resp = client::post_json(addr, "/v1/jobs", &body).unwrap();
        assert!(
            resp.status == 201 || (400..500).contains(&resp.status),
            "case {case}: corrupt GDS answered {}: {}",
            resp.status,
            resp.body_str()
        );
        if resp.status == 201 {
            let doc = resp.json().unwrap();
            accepted.push(doc.get("id").unwrap().as_str().unwrap().to_string());
        }
    }
    // Fuzz survivors (mutations that left the file readable) must settle
    // on their own — done or failed, never wedged.
    for id in &accepted {
        let doc = wait_terminal(addr, id);
        assert!(
            matches!(state(&doc), "done" | "failed"),
            "fuzz job {id}: {doc:?}"
        );
    }

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);

    // The ingestion metric counts admitted designs by source format.
    let metrics = client::get(addr, "/metrics").unwrap();
    let text = metrics.body_str().to_string();
    assert_eq!(
        metric_value(&text, "cardopc_designs_ingested_total{format=\"gds\"} "),
        1 + accepted.len() as u64,
        "{text}"
    );
    assert_eq!(
        metric_value(
            &text,
            "cardopc_designs_ingested_total{format=\"generated\"} "
        ),
        0
    );

    drop(server);
    let _ = std::fs::remove_dir_all(root);
}
