//! Cubic Bézier chain baseline (Zhang et al. [31], Fig. 4 of the paper).
//!
//! A Bézier curve does **not** interpolate its inner control points, so to
//! pass through the mask control points `p_i` and `p_{i+1}` two additional
//! handle points `p'_i` and `p'_{i+1}` must be generated for every connected
//! pair — the overhead the §IV-D ablation measures. Handles are generated so
//! that the chain is C¹ with the same end tangents a cardinal spline of
//! equal tension would have; the construction deliberately goes through the
//! polar form (angle extraction + vector rotation), mirroring the "extra
//! operations such as vector rotation" the paper attributes to the Bézier
//! flow.

use crate::SplineError;
use cardopc_geometry::{Point, Polygon};

/// A chain of cubic Bézier segments interpolating a control point loop.
///
/// ```
/// use cardopc_geometry::Point;
/// use cardopc_spline::BezierChain;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// let chain = BezierChain::closed(pts, 0.6)?;
/// assert_eq!(chain.point(0, 0.0), Point::new(0.0, 0.0));
/// # Ok::<(), cardopc_spline::SplineError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BezierChain {
    points: Vec<Point>,
    /// Generated handles per segment: `(p'_i, p'_{i+1})`.
    handles: Vec<(Point, Point)>,
    tension: f64,
    closed: bool,
}

impl BezierChain {
    /// Builds a closed chain through `points` with tangents derived from the
    /// cardinal tension `tension`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::CardinalSpline::closed`].
    pub fn closed(points: Vec<Point>, tension: f64) -> Result<Self, SplineError> {
        Self::build(points, tension, true, 3)
    }

    /// Builds an open chain (end tangents clamped).
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::CardinalSpline::open`].
    pub fn open(points: Vec<Point>, tension: f64) -> Result<Self, SplineError> {
        Self::build(points, tension, false, 2)
    }

    fn build(
        points: Vec<Point>,
        tension: f64,
        closed: bool,
        need: usize,
    ) -> Result<Self, SplineError> {
        if points.len() < need {
            return Err(SplineError::TooFewPoints {
                got: points.len(),
                need,
            });
        }
        if !tension.is_finite() {
            return Err(SplineError::InvalidTension);
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(SplineError::NonFinitePoint);
        }

        let n = points.len() as isize;
        let at = |i: isize| -> Point {
            let idx = if closed {
                i.rem_euclid(n)
            } else {
                i.clamp(0, n - 1)
            };
            points[idx as usize]
        };

        // Tangent at control point i, cardinal-style: m_i = s(p_{i+1} - p_{i-1}).
        //
        // The handle construction intentionally routes through polar form
        // (atan2 + rotation) instead of plain vector scaling: this is the
        // per-pair overhead of the Bézier flow that the ablation measures.
        let handle_from = |base: Point, tangent: Point, sign: f64| -> Point {
            let len = tangent.norm();
            if len < 1e-12 {
                return base;
            }
            let angle = tangent.y.atan2(tangent.x);
            base + Point::new(sign * len / 3.0, 0.0).rotated(angle)
        };

        let seg_count = if closed {
            points.len()
        } else {
            points.len() - 1
        };
        let mut handles = Vec::with_capacity(seg_count);
        for i in 0..seg_count as isize {
            let m0 = (at(i + 1) - at(i - 1)) * tension;
            let m1 = (at(i + 2) - at(i)) * tension;
            let h0 = handle_from(at(i), m0, 1.0);
            let h1 = handle_from(at(i + 1), m1, -1.0);
            handles.push((h0, h1));
        }

        Ok(BezierChain {
            points,
            handles,
            tension,
            closed,
        })
    }

    /// The interpolated control points.
    #[inline]
    pub fn control_points(&self) -> &[Point] {
        &self.points
    }

    /// The generated handle pair `(p'_i, p'_{i+1})` of a segment.
    #[inline]
    pub fn handles(&self, segment: usize) -> (Point, Point) {
        self.handles[segment]
    }

    /// Tension used for handle generation.
    #[inline]
    pub fn tension(&self) -> f64 {
        self.tension
    }

    /// `true` for a closed loop.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of cubic segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.handles.len()
    }

    fn segment_points(&self, segment: usize) -> (Point, Point, Point, Point) {
        let n = self.points.len();
        let p0 = self.points[segment];
        let p3 = self.points[(segment + 1) % n];
        let (h0, h1) = self.handles[segment];
        (p0, h0, h1, p3)
    }

    /// Curve position on `segment` at `t ∈ [0, 1]` (de Casteljau).
    pub fn point(&self, segment: usize, t: f64) -> Point {
        let (p0, p1, p2, p3) = self.segment_points(segment);
        let a = p0.lerp(p1, t);
        let b = p1.lerp(p2, t);
        let c = p2.lerp(p3, t);
        let d = a.lerp(b, t);
        let e = b.lerp(c, t);
        d.lerp(e, t)
    }

    /// First derivative with respect to `t`.
    pub fn derivative(&self, segment: usize, t: f64) -> Point {
        let (p0, p1, p2, p3) = self.segment_points(segment);
        let u = 1.0 - t;
        ((p1 - p0) * (u * u) + (p2 - p1) * (2.0 * u * t) + (p3 - p2) * (t * t)) * 3.0
    }

    /// Samples the whole chain with `per_segment` points per segment; same
    /// conventions as [`crate::CardinalSpline::sample`].
    ///
    /// # Panics
    ///
    /// Panics when `per_segment == 0`.
    pub fn sample(&self, per_segment: usize) -> Vec<Point> {
        assert!(per_segment > 0, "need at least one sample per segment");
        let mut out = Vec::with_capacity(self.segment_count() * per_segment + 1);
        for seg in 0..self.segment_count() {
            for k in 0..per_segment {
                out.push(self.point(seg, k as f64 / per_segment as f64));
            }
        }
        if !self.closed {
            out.push(*self.points.last().expect("validated non-empty"));
        }
        out
    }

    /// Samples the loop into a [`Polygon`].
    pub fn to_polygon(&self, per_segment: usize) -> Polygon {
        Polygon::new(self.sample(per_segment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CardinalSpline;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn validation() {
        assert!(matches!(
            BezierChain::closed(vec![Point::ZERO], 0.6),
            Err(SplineError::TooFewPoints { .. })
        ));
        assert_eq!(
            BezierChain::closed(square(), f64::INFINITY),
            Err(SplineError::InvalidTension)
        );
    }

    #[test]
    fn passes_through_control_points() {
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        for (i, &p) in square().iter().enumerate() {
            assert!(chain.point(i, 0.0).distance(p) < 1e-12);
        }
        for i in 0..4 {
            let next = square()[(i + 1) % 4];
            assert!(chain.point(i, 1.0).distance(next) < 1e-9);
        }
    }

    #[test]
    fn matches_cardinal_spline_curve() {
        // The handle construction makes each Bézier segment the Hermite
        // cubic with cardinal tangents — i.e. the identical curve, reached
        // through more work. Verify pointwise agreement.
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        let card = CardinalSpline::closed(square(), 0.6).unwrap();
        for seg in 0..4 {
            for k in 0..=10 {
                let t = k as f64 / 10.0;
                let d = chain.point(seg, t).distance(card.point(seg, t));
                assert!(d < 1e-9, "seg {seg} t {t}: divergence {d}");
            }
        }
    }

    #[test]
    fn c1_continuity_across_joints() {
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        for seg in 0..4 {
            let next = (seg + 1) % 4;
            let d_end = chain.derivative(seg, 1.0);
            let d_start = chain.derivative(next, 0.0);
            assert!((d_end - d_start).norm() < 1e-9, "joint {seg}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        let h = 1e-6;
        for seg in 0..4 {
            for k in 1..10 {
                let t = k as f64 / 10.0;
                let fd = (chain.point(seg, t + h) - chain.point(seg, t - h)) / (2.0 * h);
                assert!((fd - chain.derivative(seg, t)).norm() < 1e-5);
            }
        }
    }

    #[test]
    fn open_chain_segment_count() {
        let chain = BezierChain::open(square(), 0.6).unwrap();
        assert_eq!(chain.segment_count(), 3);
        assert_eq!(chain.sample(4).len(), 13);
    }

    #[test]
    fn handles_are_exposed() {
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        let (h0, h1) = chain.handles(0);
        // Handles lie between the endpoints region, not at the endpoints.
        assert!(h0.distance(Point::new(0.0, 0.0)) > 0.1);
        assert!(h1.distance(Point::new(10.0, 0.0)) > 0.1);
    }

    #[test]
    fn to_polygon_is_closed_loop_with_area() {
        let chain = BezierChain::closed(square(), 0.6).unwrap();
        let poly = chain.to_polygon(8);
        assert!(poly.signed_area() > 0.0);
    }
}
