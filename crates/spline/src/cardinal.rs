//! Cardinal spline evaluation and differential geometry.
//!
//! A cardinal spline interpolates its control points: the curve between
//! `p_i` and `p_{i+1}` is the cubic
//!
//! ```text
//! p(t) = [1 t t² t³] · S_card · [p_{i-1} p_i p_{i+1} p_{i+2}]ᵀ ,  t ∈ [0,1]
//!
//!            ⎡  0    1     0     0 ⎤
//! S_card  =  ⎢ -s    0     s     0 ⎥          (Eq. 2 of the paper)
//!            ⎢ 2s   s-3  3-2s   -s ⎥
//!            ⎣ -s   2-s   s-2    s ⎦
//! ```
//!
//! where `s` is the tension parameter (the paper uses `s = 0.6`). The first
//! and second parameter derivatives (Eq. 8a and Eq. 10) are polynomials with
//! the same coefficient vectors, which makes unit normals (Eq. 8c) and the
//! analytic curvature (Eq. 9) cheap to evaluate — the property that makes
//! curvilinear MRC tractable.

use crate::{SamplingPlan, SplineError};
use cardopc_geometry::{Point, Polygon};

/// The per-segment cubic coefficients `p(t) = c0 + c1·t + c2·t² + c3·t³`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Coeffs {
    c0: Point,
    c1: Point,
    c2: Point,
    c3: Point,
}

impl Coeffs {
    /// Builds the coefficients from the 4-point neighbourhood and tension.
    fn new(pm1: Point, p0: Point, p1: Point, p2: Point, s: f64) -> Self {
        Coeffs {
            c0: p0,
            c1: (p1 - pm1) * s,
            c2: pm1 * (2.0 * s) + p0 * (s - 3.0) + p1 * (3.0 - 2.0 * s) - p2 * s,
            c3: pm1 * (-s) + p0 * (2.0 - s) + p1 * (s - 2.0) + p2 * s,
        }
    }

    #[inline]
    fn point(&self, t: f64) -> Point {
        // Horner evaluation.
        self.c0 + (self.c1 + (self.c2 + self.c3 * t) * t) * t
    }

    #[inline]
    fn derivative(&self, t: f64) -> Point {
        self.c1 + (self.c2 * 2.0 + self.c3 * (3.0 * t)) * t
    }

    #[inline]
    fn second_derivative(&self, t: f64) -> Point {
        self.c2 * 2.0 + self.c3 * (6.0 * t)
    }
}

/// An interpolating cardinal spline through a sequence of control points.
///
/// Closed splines (mask shape boundaries) wrap their index arithmetic; open
/// splines clamp the end neighbourhoods by repeating the terminal points.
///
/// Segment `i` spans control points `p_i` (at local parameter `t = 0`) to
/// `p_{i+1}` (`t = 1`). A closed spline over `n` points has `n` segments, an
/// open spline `n - 1`.
///
/// ```
/// use cardopc_geometry::Point;
/// use cardopc_spline::CardinalSpline;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// let spline = CardinalSpline::closed(pts, 0.6)?;
/// assert_eq!(spline.segment_count(), 4);
/// let mid = spline.point(0, 0.5);
/// assert!(mid.x > 0.0 && mid.x < 10.0);
/// # Ok::<(), cardopc_spline::SplineError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CardinalSpline {
    points: Vec<Point>,
    tension: f64,
    closed: bool,
}

impl CardinalSpline {
    /// Creates a closed (looping) spline.
    ///
    /// # Errors
    ///
    /// [`SplineError::TooFewPoints`] with fewer than 3 points,
    /// [`SplineError::InvalidTension`] for non-finite tension,
    /// [`SplineError::NonFinitePoint`] when a coordinate is NaN/infinite.
    pub fn closed(points: Vec<Point>, tension: f64) -> Result<Self, SplineError> {
        Self::validate(&points, tension, 3)?;
        Ok(CardinalSpline {
            points,
            tension,
            closed: true,
        })
    }

    /// Creates an open spline (end tangents clamped).
    ///
    /// # Errors
    ///
    /// Same as [`CardinalSpline::closed`], but at least 2 points are
    /// required.
    pub fn open(points: Vec<Point>, tension: f64) -> Result<Self, SplineError> {
        Self::validate(&points, tension, 2)?;
        Ok(CardinalSpline {
            points,
            tension,
            closed: false,
        })
    }

    fn validate(points: &[Point], tension: f64, need: usize) -> Result<(), SplineError> {
        if points.len() < need {
            return Err(SplineError::TooFewPoints {
                got: points.len(),
                need,
            });
        }
        if !tension.is_finite() {
            return Err(SplineError::InvalidTension);
        }
        if points.iter().any(|p| !p.is_finite()) {
            return Err(SplineError::NonFinitePoint);
        }
        Ok(())
    }

    /// The control points.
    #[inline]
    pub fn control_points(&self) -> &[Point] {
        &self.points
    }

    /// Mutable access to the control points (the OPC correction loop moves
    /// them in place).
    #[inline]
    pub fn control_points_mut(&mut self) -> &mut [Point] {
        &mut self.points
    }

    /// Tension parameter `s`.
    #[inline]
    pub fn tension(&self) -> f64 {
        self.tension
    }

    /// `true` for a closed loop.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Number of cubic segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        if self.closed {
            self.points.len()
        } else {
            self.points.len() - 1
        }
    }

    /// Control point by wrapped/clamped signed index.
    #[inline]
    fn neighbor(&self, i: isize) -> Point {
        let n = self.points.len() as isize;
        let idx = if self.closed {
            i.rem_euclid(n)
        } else {
            i.clamp(0, n - 1)
        };
        self.points[idx as usize]
    }

    fn coeffs(&self, segment: usize) -> Coeffs {
        debug_assert!(segment < self.segment_count(), "segment out of range");
        let i = segment as isize;
        Coeffs::new(
            self.neighbor(i - 1),
            self.neighbor(i),
            self.neighbor(i + 1),
            self.neighbor(i + 2),
            self.tension,
        )
    }

    /// Curve position on `segment` at local parameter `t ∈ [0, 1]` (Eq. 2).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `segment >= segment_count()`.
    pub fn point(&self, segment: usize, t: f64) -> Point {
        self.coeffs(segment).point(t)
    }

    /// First parameter derivative `g(t) = p'(t)` (Eq. 8a).
    pub fn derivative(&self, segment: usize, t: f64) -> Point {
        self.coeffs(segment).derivative(t)
    }

    /// Second parameter derivative `p''(t)` (Eq. 10).
    pub fn second_derivative(&self, segment: usize, t: f64) -> Point {
        self.coeffs(segment).second_derivative(t)
    }

    /// Unit tangent `ḡ(t)` (Eq. 8b); `None` where the derivative vanishes.
    pub fn tangent(&self, segment: usize, t: f64) -> Option<Point> {
        self.derivative(segment, t).normalized()
    }

    /// Unit normal `n(t) = (-ḡ_y, ḡ_x)` (Eq. 8c); `None` where the
    /// derivative vanishes.
    ///
    /// The normal is the tangent rotated +90° (counter-clockwise). For a
    /// counter-clockwise loop it therefore points *into* the enclosed
    /// region; callers that need the outward direction on CCW loops should
    /// negate it.
    pub fn normal(&self, segment: usize, t: f64) -> Option<Point> {
        self.tangent(segment, t).map(Point::perp)
    }

    /// Signed curvature `κ(t)` (Eq. 9):
    /// `(p'_x · p''_y − p''_x · p'_y) / ‖p'‖³`.
    ///
    /// Returns `0` where the derivative vanishes. The curvature-rule check
    /// compares `|κ|` against `C_curv`.
    pub fn curvature(&self, segment: usize, t: f64) -> f64 {
        let c = self.coeffs(segment);
        let d1 = c.derivative(t);
        let d2 = c.second_derivative(t);
        let n = d1.norm();
        if n < 1e-12 {
            return 0.0;
        }
        d1.cross(d2) / (n * n * n)
    }

    /// Samples the whole curve with `per_segment` points per segment
    /// (uniform in `t`), in curve order.
    ///
    /// For a closed spline the result traverses the full loop exactly once
    /// (no duplicated closing point); for an open spline the final control
    /// point is appended so the polyline reaches the end.
    ///
    /// This is the "connect the control points" step of the OPC flow — the
    /// operation the §IV-D ablation times against Bézier splines.
    ///
    /// # Panics
    ///
    /// Panics when `per_segment == 0`.
    pub fn sample(&self, per_segment: usize) -> Vec<Point> {
        let plan = SamplingPlan::get(per_segment, self.tension);
        self.sample_with_plan(&plan)
    }

    /// Samples the whole curve through a precomputed [`SamplingPlan`]
    /// (uniform-grid basis weights, shared across all splines with the same
    /// tension). Equivalent to [`CardinalSpline::sample`] with the plan's
    /// `per_segment`, but with zero per-point polynomial work.
    pub fn sample_with_plan(&self, plan: &SamplingPlan) -> Vec<Point> {
        let mut out = Vec::new();
        self.sample_into(plan, &mut out);
        out
    }

    /// Samples through `plan` into a reused buffer (cleared first) — the
    /// zero-allocation variant the OPC iteration loop uses.
    ///
    /// # Panics
    ///
    /// Panics when the plan's tension does not match the spline's.
    pub fn sample_into(&self, plan: &SamplingPlan, out: &mut Vec<Point>) {
        assert!(
            plan.tension().to_bits() == self.tension.to_bits(),
            "sampling plan tension {} does not match spline tension {}",
            plan.tension(),
            self.tension
        );
        out.clear();
        let segs = self.segment_count();
        out.reserve(segs * plan.per_segment() + 1);
        for seg in 0..segs {
            let i = seg as isize;
            let pm1 = self.neighbor(i - 1);
            let p0 = self.neighbor(i);
            let p1 = self.neighbor(i + 1);
            let p2 = self.neighbor(i + 2);
            for w in plan.weights() {
                out.push(pm1 * w[0] + p0 * w[1] + p1 * w[2] + p2 * w[3]);
            }
        }
        if !self.closed {
            out.push(*self.points.last().expect("validated non-empty"));
        }
    }

    /// Samples the loop into a [`Polygon`] (closed splines only make sense
    /// here, but open splines simply produce the open polyline closed by a
    /// straight edge).
    pub fn to_polygon(&self, per_segment: usize) -> Polygon {
        Polygon::new(self.sample(per_segment))
    }

    /// Approximate total arc length using `per_segment` linear subdivisions.
    pub fn arc_length(&self, per_segment: usize) -> f64 {
        let pts = self.sample(per_segment.max(1));
        let mut len = 0.0;
        for w in pts.windows(2) {
            len += w[0].distance(w[1]);
        }
        if self.closed {
            if let (Some(&last), Some(&first)) = (pts.last(), pts.first()) {
                len += last.distance(first);
            }
        }
        len
    }

    /// The sampling weights of Eq. 2: the contribution of the 4-point
    /// neighbourhood `[p_{i-1}, p_i, p_{i+1}, p_{i+2}]` to `p(t)` is linear
    /// with these 4 scalar weights.
    ///
    /// The ILT-fitting gradient (Algorithm 1) relies on this linearity.
    pub fn basis_weights(tension: f64, t: f64) -> [f64; 4] {
        let s = tension;
        let t2 = t * t;
        let t3 = t2 * t;
        [
            -s * t + 2.0 * s * t2 - s * t3,
            1.0 + (s - 3.0) * t2 + (2.0 - s) * t3,
            s * t + (3.0 - 2.0 * s) * t2 + (s - 2.0) * t3,
            -s * t2 + s * t3,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            CardinalSpline::closed(vec![Point::ZERO, Point::new(1.0, 0.0)], 0.6),
            Err(SplineError::TooFewPoints { got: 2, need: 3 })
        );
        assert_eq!(
            CardinalSpline::closed(square(), f64::NAN),
            Err(SplineError::InvalidTension)
        );
        assert_eq!(
            CardinalSpline::closed(
                vec![Point::ZERO, Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0)],
                0.6
            ),
            Err(SplineError::NonFinitePoint)
        );
        assert!(CardinalSpline::open(vec![Point::ZERO, Point::new(1.0, 0.0)], 0.6).is_ok());
    }

    #[test]
    fn interpolates_control_points() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        for (i, &p) in square().iter().enumerate() {
            assert_eq!(sp.point(i, 0.0), p, "p({i}, 0) should be control point");
        }
        // Segment end equals next control point.
        for i in 0..4 {
            let next = square()[(i + 1) % 4];
            assert!(sp.point(i, 1.0).distance(next) < 1e-12);
        }
    }

    #[test]
    fn interpolation_holds_for_any_tension() {
        for &s in &[0.0, 0.3, 0.5, 0.6, 1.0, 2.0, -0.5] {
            let sp = CardinalSpline::closed(square(), s).unwrap();
            for i in 0..4 {
                assert!(
                    sp.point(i, 0.0).distance(square()[i]) < 1e-12,
                    "tension {s}"
                );
            }
        }
    }

    #[test]
    fn zero_tension_gives_straight_segments() {
        // With s = 0 the cubic degenerates: c1 = 0, and the curve becomes a
        // Hermite blend with zero end tangents — still passing through the
        // endpoints but flat. Verify midpoint is the chord midpoint for a
        // straight-line configuration.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let sp = CardinalSpline::open(pts, 0.0).unwrap();
        let m = sp.point(1, 0.5);
        assert!((m.y).abs() < 1e-12);
        assert!(m.x > 1.0 && m.x < 2.0);
    }

    #[test]
    fn collinear_points_stay_collinear() {
        let pts = vec![
            Point::new(0.0, 5.0),
            Point::new(2.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(9.0, 5.0),
        ];
        let sp = CardinalSpline::open(pts, 0.6).unwrap();
        for seg in 0..sp.segment_count() {
            for k in 0..=10 {
                let t = k as f64 / 10.0;
                assert!((sp.point(seg, t).y - 5.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        let h = 1e-6;
        for seg in 0..4 {
            for k in 1..10 {
                let t = k as f64 / 10.0;
                let fd = (sp.point(seg, t + h) - sp.point(seg, t - h)) / (2.0 * h);
                let an = sp.derivative(seg, t);
                assert!((fd - an).norm() < 1e-5, "seg {seg} t {t}");
            }
        }
    }

    #[test]
    fn second_derivative_matches_finite_difference() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        let h = 1e-5;
        for seg in 0..4 {
            for k in 1..10 {
                let t = k as f64 / 10.0;
                let fd = (sp.point(seg, t + h) + sp.point(seg, t - h) - sp.point(seg, t) * 2.0)
                    / (h * h);
                let an = sp.second_derivative(seg, t);
                assert!((fd - an).norm() < 1e-3, "seg {seg} t {t}: fd {fd} an {an}");
            }
        }
    }

    #[test]
    fn tangent_and_normal_are_unit_and_orthogonal() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        for seg in 0..4 {
            let t = 0.3;
            let tan = sp.tangent(seg, t).unwrap();
            let nor = sp.normal(seg, t).unwrap();
            assert!((tan.norm() - 1.0).abs() < 1e-12);
            assert!((nor.norm() - 1.0).abs() < 1e-12);
            assert!(tan.dot(nor).abs() < 1e-12);
            // Eq. 8c: n = (-g_y, g_x).
            assert_eq!(nor, tan.perp());
        }
    }

    #[test]
    fn circle_curvature_close_to_reciprocal_radius() {
        // 16 points on a radius-50 circle: the interpolating spline should
        // have curvature close to 1/50 everywhere (sign: CCW loop -> positive
        // with our convention).
        let n = 16;
        let r = 50.0;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect();
        let sp = CardinalSpline::closed(pts, 0.5).unwrap();
        for seg in 0..n {
            for k in 0..5 {
                let t = k as f64 / 5.0;
                let kappa = sp.curvature(seg, t);
                assert!(
                    (kappa - 1.0 / r).abs() < 0.3 / r,
                    "seg {seg} t {t}: curvature {kappa} vs {}",
                    1.0 / r
                );
            }
        }
    }

    #[test]
    fn straight_line_zero_curvature() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let sp = CardinalSpline::open(pts, 0.6).unwrap();
        assert!(sp.curvature(1, 0.5).abs() < 1e-9);
    }

    #[test]
    fn sample_counts() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        assert_eq!(sp.sample(8).len(), 32);
        let open = CardinalSpline::open(square(), 0.6).unwrap();
        assert_eq!(open.sample(8).len(), 3 * 8 + 1);
    }

    #[test]
    fn sampled_loop_has_positive_area_for_ccw_points() {
        let sp = CardinalSpline::closed(square(), 0.6).unwrap();
        let poly = sp.to_polygon(16);
        assert!(poly.signed_area() > 0.0);
        // With s = 0.6 each side bulges ~1.5 nm outward (p(0.5) of the
        // bottom segment is (5, -1.5)), adding ~10 nm^2 per side.
        assert!(
            poly.area() > 100.0 && poly.area() < 150.0,
            "area {}",
            poly.area()
        );
    }

    #[test]
    fn arc_length_of_circle() {
        let n = 32;
        let r = 10.0;
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                Point::new(r * th.cos(), r * th.sin())
            })
            .collect();
        let sp = CardinalSpline::closed(pts, 0.5).unwrap();
        let len = sp.arc_length(16);
        let expected = 2.0 * std::f64::consts::PI * r;
        assert!((len - expected).abs() < 0.05 * expected, "len {len}");
    }

    #[test]
    fn basis_weights_partition_of_unity_at_endpoints() {
        for &s in &[0.0, 0.5, 0.6, 1.0] {
            let w0 = CardinalSpline::basis_weights(s, 0.0);
            assert_eq!(w0, [0.0, 1.0, 0.0, 0.0]);
            let w1 = CardinalSpline::basis_weights(s, 1.0);
            assert!((w1[0]).abs() < 1e-12);
            assert!((w1[1]).abs() < 1e-12);
            assert!((w1[2] - 1.0).abs() < 1e-12);
            assert!((w1[3]).abs() < 1e-12);
        }
    }

    #[test]
    fn basis_weights_match_point_evaluation() {
        let sq = square();
        let sp = CardinalSpline::closed(sq.clone(), 0.6).unwrap();
        for seg in 0..4 {
            for k in 0..=10 {
                let t = k as f64 / 10.0;
                let w = CardinalSpline::basis_weights(0.6, t);
                let n = sq.len() as isize;
                let at = |j: isize| sq[j.rem_euclid(n) as usize];
                let manual = at(seg as isize - 1) * w[0]
                    + at(seg as isize) * w[1]
                    + at(seg as isize + 1) * w[2]
                    + at(seg as isize + 2) * w[3];
                assert!(manual.distance(sp.point(seg, t)) < 1e-12);
            }
        }
    }

    #[test]
    fn weights_always_sum_to_one() {
        for &s in &[0.0, 0.3, 0.6, 1.0, 1.7] {
            for k in 0..=20 {
                let t = k as f64 / 20.0;
                let w = CardinalSpline::basis_weights(s, t);
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "s {s} t {t} sum {sum}");
            }
        }
    }

    #[test]
    fn open_spline_clamps_ends() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let sp = CardinalSpline::open(pts, 0.6).unwrap();
        assert_eq!(sp.segment_count(), 1);
        assert_eq!(sp.point(0, 0.0), Point::new(0.0, 0.0));
        assert!(sp.point(0, 1.0).distance(Point::new(5.0, 5.0)) < 1e-12);
    }

    #[test]
    fn control_points_mut_moves_curve() {
        let mut sp = CardinalSpline::closed(square(), 0.6).unwrap();
        sp.control_points_mut()[0] = Point::new(-5.0, -5.0);
        assert_eq!(sp.point(0, 0.0), Point::new(-5.0, -5.0));
    }
}
