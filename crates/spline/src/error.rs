//! Error type for spline construction and fitting.

use std::error::Error;
use std::fmt;

/// Errors returned by spline constructors and the fitting algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SplineError {
    /// Fewer control points than the spline kind requires.
    TooFewPoints {
        /// Points provided by the caller.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The tension parameter is not finite.
    InvalidTension,
    /// A control point coordinate is not finite.
    NonFinitePoint,
    /// A fitting ratio is outside `(0, 1]`.
    InvalidRatio,
}

impl fmt::Display for SplineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplineError::TooFewPoints { got, need } => {
                write!(f, "spline needs at least {need} control points, got {got}")
            }
            SplineError::InvalidTension => write!(f, "tension parameter must be finite"),
            SplineError::NonFinitePoint => write!(f, "control point coordinates must be finite"),
            SplineError::InvalidRatio => write!(f, "sampling ratio must be in (0, 1]"),
        }
    }
}

impl Error for SplineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SplineError::TooFewPoints { got: 1, need: 3 };
        assert_eq!(
            e.to_string(),
            "spline needs at least 3 control points, got 1"
        );
        assert!(!SplineError::InvalidTension.to_string().is_empty());
        assert!(!SplineError::NonFinitePoint.to_string().is_empty());
        assert!(!SplineError::InvalidRatio.to_string().is_empty());
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SplineError>();
    }
}
