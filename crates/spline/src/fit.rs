//! Fitting cardinal splines to contours (Algorithm 1 of the paper).
//!
//! The ILT-OPC hybrid flow extracts the boundary `P_i` of every shape in an
//! ILT-optimised mask image, samples a control point set `Q` (ratio `r_Q`)
//! and a denser reference point set `R` (ratio `r_R`) from it, then runs
//! gradient descent on `Q` to minimise `‖F(Q) − R‖²`, where `F` interpolates
//! the closed cardinal spline through `Q` at `|R|` evenly spaced parameters.
//!
//! Because `F` is *linear* in `Q` (each interpolated point is a fixed
//! 4-weight combination of neighbouring control points, see
//! [`CardinalSpline::basis_weights`]), the gradient is analytic and exact —
//! no autodiff needed. The optimiser is Adam, as the paper suggests.

use crate::{CardinalSpline, SamplingPlan, SplineError};
use cardopc_geometry::{Point, Polygon};

/// Configuration of the contour-fitting optimisation.
#[derive(Clone, Debug, PartialEq)]
pub struct FitConfig {
    /// Fraction `r_Q` of boundary points promoted to control points.
    pub control_ratio: f64,
    /// Fraction `r_R` of boundary points used as fitting references.
    pub reference_ratio: f64,
    /// Number of Adam iterations `K`.
    pub iterations: usize,
    /// Adam learning rate `α` (nanometres per step scale).
    pub learning_rate: f64,
    /// Cardinal tension `s` of the fitted spline.
    pub tension: f64,
    /// Lower bound on the number of control points, so tiny shapes still
    /// get a workable spline.
    pub min_control_points: usize,
}

impl Default for FitConfig {
    /// Paper-flavoured defaults: `r_Q = 1/8`, `r_R = 1/2`, `K = 200`,
    /// `α = 0.5`, `s = 0.6`.
    fn default() -> Self {
        FitConfig {
            control_ratio: 0.125,
            reference_ratio: 0.5,
            iterations: 200,
            learning_rate: 0.5,
            tension: 0.6,
            min_control_points: 4,
        }
    }
}

/// Outcome of [`fit_contour`].
#[derive(Clone, Debug)]
pub struct FitResult {
    /// The fitted closed spline.
    pub spline: CardinalSpline,
    /// Mean squared error before optimisation (nm²).
    pub initial_loss: f64,
    /// Mean squared error after optimisation (nm²).
    pub final_loss: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

/// Resamples a closed polyline to `n` points evenly spaced by arc length,
/// starting at the first vertex.
///
/// Used to derive both the control point set `Q` and the reference set `R`
/// from a traced contour.
///
/// # Panics
///
/// Panics when `points` is empty or `n == 0`.
pub fn resample_closed(points: &[Point], n: usize) -> Vec<Point> {
    let mut out = Vec::new();
    resample_closed_into(points, n, &mut out);
    out
}

/// [`resample_closed`] writing into a caller-owned buffer (cleared first) —
/// the fitting loop resamples every contour twice per shape, so the
/// reusable form avoids two fresh `Vec<Point>` allocations each time.
///
/// Both the arc-length targets and the segment starts advance
/// monotonically, so one merge-walk over the loop's segments replaces the
/// cumulative-length table the allocating version used to build. The
/// partial sums accumulate in the same left-to-right order, so the samples
/// are identical.
///
/// # Panics
///
/// Panics when `points` is empty or `n == 0`.
pub fn resample_closed_into(points: &[Point], n: usize, out: &mut Vec<Point>) {
    assert!(!points.is_empty(), "cannot resample an empty polyline");
    assert!(n > 0, "need at least one sample");
    out.clear();
    let m = points.len();
    let mut total = 0.0;
    for i in 0..m {
        total += points[i].distance(points[(i + 1) % m]);
    }
    if total <= 0.0 {
        out.resize(n, points[0]);
        return;
    }
    out.reserve(n);
    // Walk state: segment `seg` spans [start, end) in cumulative arc length.
    let mut seg = 0usize;
    let mut start = 0.0;
    let mut end = points[0].distance(points[1 % m]);
    for k in 0..n {
        let target = total * k as f64 / n as f64;
        while seg + 1 < m && end < target {
            seg += 1;
            start = end;
            end += points[seg].distance(points[(seg + 1) % m]);
        }
        let seg_len = end - start;
        let t = if seg_len <= 0.0 {
            0.0
        } else {
            (target - start) / seg_len
        };
        out.push(points[seg].lerp(points[(seg + 1) % m], t));
    }
}

/// Reusable buffers for [`fit_contour_with`] — control/reference samples,
/// the per-reference sampling plan, and the Adam optimiser state. One
/// scratch per worker lets the hybrid flow fit thousands of contours with
/// no per-shape allocation beyond the returned spline itself.
///
/// Every buffer is fully re-initialised per contour, so results never
/// depend on what a scratch fitted before (this is what makes pool-parallel
/// fitting independent of the worker count).
#[derive(Clone, Debug, Default)]
pub struct FitScratch {
    q: Vec<Point>,
    r: Vec<Point>,
    plan: Vec<(usize, f64, [f64; 4])>,
    m: Vec<Point>,
    v: Vec<f64>,
    grad: Vec<Point>,
}

impl FitScratch {
    /// An empty scratch; buffers grow lazily on first use.
    pub fn new() -> FitScratch {
        FitScratch::default()
    }
}

/// Fits a closed cardinal spline to a traced contour (Algorithm 1).
///
/// # Errors
///
/// * [`SplineError::InvalidRatio`] when a ratio is outside `(0, 1]`,
/// * [`SplineError::TooFewPoints`] when the contour has fewer than 3
///   vertices.
///
/// ```
/// use cardopc_geometry::{Point, Polygon};
/// use cardopc_spline::{fit_contour, FitConfig};
///
/// // A dense octagon standing in for a traced ILT contour.
/// let contour: Polygon = (0..64)
///     .map(|i| {
///         let th = std::f64::consts::TAU * i as f64 / 64.0;
///         Point::new(50.0 + 20.0 * th.cos(), 50.0 + 20.0 * th.sin())
///     })
///     .collect();
/// let fit = fit_contour(&contour, &FitConfig::default())?;
/// assert!(fit.final_loss <= fit.initial_loss);
/// # Ok::<(), cardopc_spline::SplineError>(())
/// ```
pub fn fit_contour(contour: &Polygon, config: &FitConfig) -> Result<FitResult, SplineError> {
    fit_contour_with(contour, config, &mut FitScratch::new())
}

/// [`fit_contour`] with caller-owned scratch buffers — the form the hybrid
/// flow's pool workers use so the Adam loop allocates nothing per contour
/// (only the returned spline's control points are freshly allocated).
///
/// # Errors
///
/// Same as [`fit_contour`].
pub fn fit_contour_with(
    contour: &Polygon,
    config: &FitConfig,
    scratch: &mut FitScratch,
) -> Result<FitResult, SplineError> {
    if !(0.0..=1.0).contains(&config.control_ratio)
        || config.control_ratio <= 0.0
        || !(0.0..=1.0).contains(&config.reference_ratio)
        || config.reference_ratio <= 0.0
    {
        return Err(SplineError::InvalidRatio);
    }
    let boundary = contour.vertices();
    if boundary.len() < 3 {
        return Err(SplineError::TooFewPoints {
            got: boundary.len(),
            need: 3,
        });
    }

    let n_q = ((boundary.len() as f64 * config.control_ratio).round() as usize)
        .max(config.min_control_points.max(3));
    let n_r = ((boundary.len() as f64 * config.reference_ratio).round() as usize).max(n_q);

    let FitScratch {
        q,
        r,
        plan,
        m,
        v,
        grad,
    } = scratch;
    resample_closed_into(boundary, n_q, q);
    resample_closed_into(boundary, n_r, r);

    // Sampling plan: reference k pairs with spline parameter
    // u_k = k · n_q / n_r over the closed parameter domain [0, n_q).
    // Q[0] and R[0] both sit at arc length 0, so index pairing is aligned.
    // When n_r is an exact multiple of n_q the parameters land on the
    // uniform per-segment grid, so the process-wide cached [`SamplingPlan`]
    // supplies the weights instead of recomputing them per reference point.
    plan.clear();
    if n_r.is_multiple_of(n_q) {
        let per = n_r / n_q;
        let shared = SamplingPlan::get(per, config.tension);
        plan.extend((0..n_r).map(|k| (k / per, shared.ts()[k % per], shared.weights()[k % per])));
    } else {
        plan.extend((0..n_r).map(|k| {
            let u = k as f64 * n_q as f64 / n_r as f64;
            let seg = (u.floor() as usize).min(n_q - 1);
            let t = u - seg as f64;
            (seg, t, CardinalSpline::basis_weights(config.tension, t))
        }));
    }

    let initial_loss = plan_loss(plan, r, q);

    // Adam state, re-zeroed per contour.
    m.clear();
    m.resize(n_q, Point::ZERO);
    v.clear();
    v.resize(n_q, 0.0);
    grad.resize(n_q, Point::ZERO);
    let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);

    for step in 1..=config.iterations {
        grad.fill(Point::ZERO);
        for (k, &(seg, _t, w)) in plan.iter().enumerate() {
            let p = interp(q, seg, &w);
            let residual = (p - r[k]) * (2.0 / n_r as f64);
            for (j, &wj) in w.iter().enumerate() {
                let idx = wrap(seg as isize + j as isize - 1, n_q);
                grad[idx] += residual * wj;
            }
        }
        for i in 0..n_q {
            m[i] = m[i] * beta1 + grad[i] * (1.0 - beta1);
            v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i].norm_sq();
            let m_hat = m[i] / (1.0 - beta1.powi(step as i32));
            let v_hat = v[i] / (1.0 - beta2.powi(step as i32));
            q[i] -= m_hat * (config.learning_rate / (v_hat.sqrt() + eps));
        }
    }

    let final_loss = plan_loss(plan, r, q);
    let spline = CardinalSpline::closed(q.clone(), config.tension)?;
    Ok(FitResult {
        spline,
        initial_loss,
        final_loss,
        iterations: config.iterations,
    })
}

/// Mean squared distance between the spline sampled by `plan` over control
/// points `q` and the reference samples `r`.
fn plan_loss(plan: &[(usize, f64, [f64; 4])], r: &[Point], q: &[Point]) -> f64 {
    let mut acc = 0.0;
    for (k, &(seg, _t, w)) in plan.iter().enumerate() {
        let p = interp(q, seg, &w);
        acc += p.distance_sq(r[k]);
    }
    acc / r.len() as f64
}

#[inline]
fn wrap(i: isize, n: usize) -> usize {
    i.rem_euclid(n as isize) as usize
}

#[inline]
fn interp(q: &[Point], seg: usize, w: &[f64; 4]) -> Point {
    let n = q.len();
    q[wrap(seg as isize - 1, n)] * w[0]
        + q[seg % n] * w[1]
        + q[wrap(seg as isize + 1, n)] * w[2]
        + q[wrap(seg as isize + 2, n)] * w[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circle(n: usize, r: f64) -> Polygon {
        (0..n)
            .map(|i| {
                let th = std::f64::consts::TAU * i as f64 / n as f64;
                Point::new(100.0 + r * th.cos(), 100.0 + r * th.sin())
            })
            .collect()
    }

    #[test]
    fn resample_preserves_count_and_location() {
        let c = circle(100, 50.0);
        let s = resample_closed(c.vertices(), 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], c.vertices()[0]);
        // All samples on the circle (radius within polyline chord error).
        for p in &s {
            let r = p.distance(Point::new(100.0, 100.0));
            assert!((r - 50.0).abs() < 0.5, "sample radius {r}");
        }
    }

    #[test]
    fn resample_even_spacing() {
        let sq = Polygon::rect(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let s = resample_closed(sq.vertices(), 8);
        // Perimeter 40, so consecutive samples are 5 apart along the walk.
        for w in s.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d <= 5.0 + 1e-9, "spacing {d}");
        }
    }

    #[test]
    fn resample_degenerate_loop() {
        let pts = vec![Point::new(1.0, 1.0); 5];
        let s = resample_closed(&pts, 4);
        assert_eq!(s, vec![Point::new(1.0, 1.0); 4]);
    }

    #[test]
    fn invalid_ratios_rejected() {
        let c = circle(64, 20.0);
        for bad in [0.0, -0.5, 1.5] {
            let cfg = FitConfig {
                control_ratio: bad,
                ..FitConfig::default()
            };
            assert!(matches!(
                fit_contour(&c, &cfg),
                Err(SplineError::InvalidRatio)
            ));
            let cfg = FitConfig {
                reference_ratio: bad,
                ..FitConfig::default()
            };
            assert!(matches!(
                fit_contour(&c, &cfg),
                Err(SplineError::InvalidRatio)
            ));
        }
    }

    #[test]
    fn fit_circle_converges() {
        let c = circle(128, 40.0);
        let cfg = FitConfig::default();
        let fit = fit_contour(&c, &cfg).unwrap();
        assert!(fit.final_loss <= fit.initial_loss);
        assert!(
            fit.final_loss < 0.05,
            "expected sub-0.05 nm^2 MSE on a circle, got {}",
            fit.final_loss
        );
        // The fitted spline stays close to the circle.
        let poly = fit.spline.to_polygon(8);
        for p in poly.vertices() {
            let r = p.distance(Point::new(100.0, 100.0));
            assert!((r - 40.0).abs() < 1.0, "fitted point radius {r}");
        }
    }

    #[test]
    fn fit_square_recovers_area() {
        // Square contour, 200 boundary points.
        let sq = Polygon::rect(Point::new(20.0, 20.0), Point::new(120.0, 120.0));
        let dense = resample_closed(sq.vertices(), 200);
        let dense_poly = Polygon::new(dense);
        let fit = fit_contour(&dense_poly, &FitConfig::default()).unwrap();
        let fitted = fit.spline.to_polygon(8);
        let area = fitted.area();
        assert!(
            (area - 10_000.0).abs() < 0.05 * 10_000.0,
            "fitted area {area}"
        );
    }

    #[test]
    fn too_few_contour_points() {
        let tiny: Polygon = [Point::ZERO, Point::new(1.0, 0.0)].into_iter().collect();
        assert!(matches!(
            fit_contour(&tiny, &FitConfig::default()),
            Err(SplineError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn min_control_points_respected() {
        let c = circle(12, 10.0);
        let cfg = FitConfig {
            control_ratio: 0.01, // would give 0 control points
            min_control_points: 6,
            ..FitConfig::default()
        };
        let fit = fit_contour(&c, &cfg).unwrap();
        assert_eq!(fit.spline.control_points().len(), 6);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let c = circle(96, 30.0);
        let short = fit_contour(
            &c,
            &FitConfig {
                iterations: 10,
                ..FitConfig::default()
            },
        )
        .unwrap();
        let long = fit_contour(
            &c,
            &FitConfig {
                iterations: 400,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert!(long.final_loss <= short.final_loss + 1e-9);
    }
}
