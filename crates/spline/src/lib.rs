//! # cardopc-spline
//!
//! Spline mathematics for the CardOPC curvilinear OPC framework.
//!
//! The paper represents every mask shape as a closed loop of control points
//! connected by **cardinal splines** (Eq. 2). This crate provides:
//!
//! * [`CardinalSpline`] — evaluation `p(t)`, first and second derivatives
//!   (Eq. 8a, Eq. 10), unit tangents/normals (Eq. 8b–8c) and analytic
//!   curvature (Eq. 9), for open and closed control polygons,
//! * [`BezierChain`] — the cubic Bézier baseline of Zhang et al. (Fig. 4 and
//!   the §IV-D ablation), which must *generate* two inner handle points per
//!   connected pair before it can interpolate,
//! * [`fit`] — Algorithm 1: fitting a cardinal spline's control points to a
//!   sampled reference contour with Adam gradient descent, the heart of the
//!   ILT-OPC hybrid flow.
//!
//! ```
//! use cardopc_geometry::Point;
//! use cardopc_spline::CardinalSpline;
//!
//! let square = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(10.0, 0.0),
//!     Point::new(10.0, 10.0),
//!     Point::new(0.0, 10.0),
//! ];
//! let spline = CardinalSpline::closed(square, 0.6)?;
//! // The interpolating spline passes through each control point.
//! assert_eq!(spline.point(1, 0.0), Point::new(10.0, 0.0));
//! # Ok::<(), cardopc_spline::SplineError>(())
//! ```

#![warn(missing_docs)]

mod bezier;
mod cardinal;
mod error;
pub mod fit;
mod plan;

pub use bezier::BezierChain;
pub use cardinal::CardinalSpline;
pub use error::SplineError;
pub use fit::{
    fit_contour, fit_contour_with, resample_closed, resample_closed_into, FitConfig, FitResult,
    FitScratch,
};
pub use plan::SamplingPlan;
