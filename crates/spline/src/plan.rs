//! Precomputed uniform-grid sampling plans.
//!
//! Sampling a cardinal spline with `per_segment` points per segment always
//! evaluates Eq. (2) at the same local parameters `t = k / per_segment`, and
//! the basis weights of Eq. (2) depend only on `(t, tension)` — not on the
//! control points. A [`SamplingPlan`] precomputes those weights once per
//! `(per_segment, tension)` pair and shares them process-wide through the
//! same `OnceLock` registry idiom as the litho crate's FFT plans, so the OPC
//! loop's per-iteration "connect" step reduces to four fused
//! multiply-accumulates per sample with zero per-point polynomial work.

use crate::CardinalSpline;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Precomputed Eq. (2) basis weights for uniform sampling at
/// `t = k / per_segment`, `k = 0..per_segment`, for one tension value.
///
/// Obtain shared instances through [`SamplingPlan::get`]; plans are built
/// once per `(per_segment, tension)` pair and cached process-wide.
#[derive(Debug)]
pub struct SamplingPlan {
    per_segment: usize,
    tension: f64,
    /// `weights[k] = CardinalSpline::basis_weights(tension, ts[k])`.
    weights: Vec<[f64; 4]>,
    /// The local parameters `k / per_segment`.
    ts: Vec<f64>,
}

/// Registry key: `per_segment` plus the exact bit pattern of the tension
/// (tensions are configuration constants, so bit-exact matching is right —
/// no epsilon bucketing needed).
type PlanKey = (usize, u64);

static REGISTRY: OnceLock<RwLock<HashMap<PlanKey, Arc<SamplingPlan>>>> = OnceLock::new();

impl SamplingPlan {
    /// Returns the shared plan for `(per_segment, tension)`, building it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics when `per_segment == 0` or `tension` is non-finite.
    pub fn get(per_segment: usize, tension: f64) -> Arc<SamplingPlan> {
        assert!(per_segment > 0, "need at least one sample per segment");
        assert!(tension.is_finite(), "tension must be finite");
        let key: PlanKey = (per_segment, tension.to_bits());
        let registry = REGISTRY.get_or_init(|| RwLock::new(HashMap::new()));
        // Poisoning only happens when a panicking thread held the lock; the
        // map contents are still valid (plans are write-once), so recover.
        if let Some(plan) = registry.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return Arc::clone(plan);
        }
        let plan = Arc::new(SamplingPlan::build(per_segment, tension));
        let mut map = registry.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_insert(plan))
    }

    fn build(per_segment: usize, tension: f64) -> SamplingPlan {
        let ts: Vec<f64> = (0..per_segment)
            .map(|k| k as f64 / per_segment as f64)
            .collect();
        let weights = ts
            .iter()
            .map(|&t| CardinalSpline::basis_weights(tension, t))
            .collect();
        SamplingPlan {
            per_segment,
            tension,
            weights,
            ts,
        }
    }

    /// Samples per segment this plan was built for.
    #[inline]
    pub fn per_segment(&self) -> usize {
        self.per_segment
    }

    /// Tension this plan was built for.
    #[inline]
    pub fn tension(&self) -> f64 {
        self.tension
    }

    /// The precomputed weights, one `[w_{i-1}, w_i, w_{i+1}, w_{i+2}]` row
    /// per local parameter in [`ts`](Self::ts).
    #[inline]
    pub fn weights(&self) -> &[[f64; 4]] {
        &self.weights
    }

    /// The local parameters `k / per_segment`, `k = 0..per_segment`.
    #[inline]
    pub fn ts(&self) -> &[f64] {
        &self.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_weights_match_basis_weights() {
        let plan = SamplingPlan::get(8, 0.6);
        assert_eq!(plan.per_segment(), 8);
        assert_eq!(plan.tension(), 0.6);
        assert_eq!(plan.weights().len(), 8);
        for (k, w) in plan.weights().iter().enumerate() {
            let t = k as f64 / 8.0;
            assert_eq!(*w, CardinalSpline::basis_weights(0.6, t));
            assert_eq!(plan.ts()[k], t);
        }
    }

    #[test]
    fn registry_shares_plans() {
        let a = SamplingPlan::get(16, 0.5);
        let b = SamplingPlan::get(16, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        let c = SamplingPlan::get(16, 0.6);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_per_segment_panics() {
        let _ = SamplingPlan::get(0, 0.6);
    }
}
