//! Property-based tests for spline invariants.

use cardopc_geometry::{Point, Polygon, SplitMix64};
use cardopc_spline::{
    fit::resample_closed, fit_contour, fit_contour_with, BezierChain, CardinalSpline, FitConfig,
    FitScratch, SamplingPlan,
};
use proptest::prelude::*;

/// A random simple (star-shaped) closed control polygon.
fn star_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed);
    let mut pts: Vec<Point> = (0..n)
        .map(|i| {
            let th = std::f64::consts::TAU * (i as f64 + 0.5 * rng.next_f64()) / n as f64;
            let r = rng.range_f64(20.0, 80.0);
            Point::new(100.0 + r * th.cos(), 100.0 + r * th.sin())
        })
        .collect();
    pts.sort_by(|a, b| {
        let ta = (a.y - 100.0).atan2(a.x - 100.0);
        let tb = (b.y - 100.0).atan2(b.x - 100.0);
        ta.total_cmp(&tb)
    });
    pts.dedup_by(|a, b| a.distance(*b) < 1e-6);
    pts
}

proptest! {
    /// Interpolation: the spline passes through every control point for any
    /// tension — the defining property of cardinal splines (paper §III-C
    /// reason 1).
    #[test]
    fn spline_interpolates_for_any_tension(seed in 0u64..500, n in 3usize..24,
                                           s in -1.0..2.0f64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let sp = CardinalSpline::closed(pts.clone(), s).unwrap();
        for (i, &p) in pts.iter().enumerate() {
            prop_assert!(sp.point(i, 0.0).distance(p) < 1e-9);
        }
    }

    /// The curve is continuous across segment joints.
    #[test]
    fn continuity_at_joints(seed in 0u64..200, n in 3usize..16) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let sp = CardinalSpline::closed(pts.clone(), 0.6).unwrap();
        let m = sp.segment_count();
        for i in 0..m {
            let end = sp.point(i, 1.0);
            let start = sp.point((i + 1) % m, 0.0);
            prop_assert!(end.distance(start) < 1e-9);
            // C1: derivatives match too.
            let d_end = sp.derivative(i, 1.0);
            let d_start = sp.derivative((i + 1) % m, 0.0);
            prop_assert!((d_end - d_start).norm() < 1e-9 * (1.0 + d_end.norm()));
        }
    }

    /// Normal is always the tangent rotated +90 degrees (Eq. 8c).
    #[test]
    fn normal_is_perp_tangent(seed in 0u64..200, n in 3usize..16, t in 0.0..1.0f64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let sp = CardinalSpline::closed(pts, 0.6).unwrap();
        for seg in 0..sp.segment_count() {
            if let (Some(tan), Some(nor)) = (sp.tangent(seg, t), sp.normal(seg, t)) {
                prop_assert!((nor - tan.perp()).norm() < 1e-12);
                prop_assert!(tan.dot(nor).abs() < 1e-9);
            }
        }
    }

    /// Curvature is translation- and rotation-invariant.
    #[test]
    fn curvature_rigid_invariance(seed in 0u64..100, n in 4usize..12,
                                  dx in -50.0..50.0f64, dy in -50.0..50.0f64,
                                  angle in -3.0..3.0f64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let moved: Vec<Point> = pts
            .iter()
            .map(|p| p.rotated(angle) + Point::new(dx, dy))
            .collect();
        let a = CardinalSpline::closed(pts, 0.6).unwrap();
        let b = CardinalSpline::closed(moved, 0.6).unwrap();
        for seg in 0..a.segment_count() {
            for k in 0..4 {
                let t = k as f64 / 4.0;
                let ka = a.curvature(seg, t);
                let kb = b.curvature(seg, t);
                prop_assert!((ka - kb).abs() < 1e-6 * (1.0 + ka.abs()),
                             "seg {} t {}: {} vs {}", seg, t, ka, kb);
            }
        }
    }

    /// Uniform scaling by f scales curvature by 1/f.
    #[test]
    fn curvature_scaling_law(seed in 0u64..100, n in 4usize..12, f in 0.5..4.0f64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let scaled: Vec<Point> = pts.iter().map(|&p| p * f).collect();
        let a = CardinalSpline::closed(pts, 0.6).unwrap();
        let b = CardinalSpline::closed(scaled, 0.6).unwrap();
        for seg in 0..a.segment_count() {
            let ka = a.curvature(seg, 0.5);
            let kb = b.curvature(seg, 0.5);
            prop_assert!((ka / f - kb).abs() < 1e-6 * (1.0 + ka.abs()),
                         "{} vs {}", ka / f, kb);
        }
    }

    /// Bézier chain with cardinal-derived handles traces the same curve as
    /// the cardinal spline (they are the same Hermite cubic).
    #[test]
    fn bezier_equals_cardinal(seed in 0u64..200, n in 3usize..16, t in 0.0..1.0f64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let card = CardinalSpline::closed(pts.clone(), 0.6).unwrap();
        let bez = BezierChain::closed(pts, 0.6).unwrap();
        for seg in 0..card.segment_count() {
            let d = card.point(seg, t).distance(bez.point(seg, t));
            prop_assert!(d < 1e-6, "seg {} t {}: divergence {}", seg, t, d);
        }
    }

    /// Resampling a closed polyline preserves total arc length roughly and
    /// yields the requested count.
    #[test]
    fn resample_count_and_bounds(seed in 0u64..200, n in 8usize..64, m in 3usize..64) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let res = resample_closed(&pts, m);
        prop_assert_eq!(res.len(), m);
        let bbox = cardopc_geometry::BBox::from_points(pts.iter().copied());
        for p in &res {
            prop_assert!(bbox.expanded(1e-6).contains(*p));
        }
    }

    /// Fitting never increases the loss.
    #[test]
    fn fit_does_not_increase_loss(seed in 0u64..40) {
        let pts = star_points(seed, 48);
        prop_assume!(pts.len() >= 8);
        let contour = Polygon::new(pts);
        let cfg = FitConfig { iterations: 50, ..FitConfig::default() };
        let fit = fit_contour(&contour, &cfg).unwrap();
        prop_assert!(fit.final_loss <= fit.initial_loss + 1e-9);
    }

    /// Plan-based sampling matches direct Eq. (2) evaluation to 1e-12 for
    /// random control sets, tensions and sampling densities.
    #[test]
    fn sampling_plan_matches_direct_point(seed in 0u64..200, n in 3usize..24,
                                          s in -1.0..2.0f64, per in 1usize..16) {
        let pts = star_points(seed, n);
        prop_assume!(pts.len() >= 3);
        let sp = CardinalSpline::closed(pts, s).unwrap();
        let plan = SamplingPlan::get(per, s);
        let planned = sp.sample_with_plan(&plan);
        prop_assert_eq!(planned.len(), sp.segment_count() * per);
        for (idx, p) in planned.iter().enumerate() {
            let seg = idx / per;
            let t = (idx % per) as f64 / per as f64;
            prop_assert!(p.distance(sp.point(seg, t)) < 1e-12,
                         "seg {} t {}: planned {} direct {}", seg, t, p, sp.point(seg, t));
        }
    }

    /// basis_weights always sums to 1 (affine invariance of the spline).
    #[test]
    fn weights_partition_unity(s in -1.0..2.0f64, t in 0.0..1.0f64) {
        let w = CardinalSpline::basis_weights(s, t);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-12);
    }

    /// Fitting with a scratch dirtied by a previous (different-sized)
    /// contour is bitwise identical to fitting with a fresh scratch — the
    /// guarantee pool-parallel fitting relies on for worker-count
    /// independence.
    #[test]
    fn fit_scratch_reuse_is_stateless(seed in 0u64..50, n1 in 24usize..96, n2 in 24usize..96) {
        let first: Polygon = star_points(seed, n1).into_iter().collect();
        let second: Polygon = star_points(seed.wrapping_add(1), n2).into_iter().collect();
        prop_assume!(first.len() >= 3 && second.len() >= 3);
        let cfg = FitConfig { iterations: 30, ..FitConfig::default() };

        let mut scratch = FitScratch::new();
        let _ = fit_contour_with(&first, &cfg, &mut scratch); // dirty the buffers
        let reused = fit_contour_with(&second, &cfg, &mut scratch).unwrap();
        let fresh = fit_contour(&second, &cfg).unwrap();
        prop_assert_eq!(reused.spline.control_points(), fresh.spline.control_points());
        prop_assert_eq!(reused.initial_loss, fresh.initial_loss);
        prop_assert_eq!(reused.final_loss, fresh.final_loss);
    }
}
