//! Fitting an *external* mask image with cardinal splines (§III-B/G).
//!
//! The paper notes that SRAF insertion / mask input can come from external
//! tools (Calibre, a production ILT). This example paints a synthetic
//! "external ILT result" onto a pixel grid, fits every shape with
//! Algorithm 1 via [`cardopc::ilt::fit_mask_shapes`], resolves the mask
//! rules, and writes the result as SVG.
//!
//! ```sh
//! cargo run --release --example fit_external_mask
//! ```

use cardopc::geometry::svg::{write_svg, SvgLayer};
use cardopc::ilt::{fit_mask_shapes, HybridConfig};
use cardopc::prelude::*;
use std::fs::File;
use std::io::BufWriter;

/// Paints a blobby "external ILT" mask: two rounded mains and a few
/// assist bars.
fn synthetic_external_mask() -> Grid {
    let mut g = Grid::zeros(256, 256, 4.0);
    let mut paint_disc = |cx: f64, cy: f64, r: f64| {
        for iy in 0..256 {
            for ix in 0..256 {
                let p = Point::new((ix as f64 + 0.5) * 4.0, (iy as f64 + 0.5) * 4.0);
                if p.distance(Point::new(cx, cy)) <= r {
                    g[(ix, iy)] = 1.0;
                }
            }
        }
    };
    // Mains: overlapping discs form peanut-shaped blobs, the hallmark of
    // ILT output.
    paint_disc(350.0, 500.0, 90.0);
    paint_disc(430.0, 500.0, 80.0);
    paint_disc(680.0, 500.0, 85.0);
    // Assist arcs (painted as thin bars).
    let mut paint_rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        for iy in 0..256 {
            for ix in 0..256 {
                let (x, y) = ((ix as f64 + 0.5) * 4.0, (iy as f64 + 0.5) * 4.0);
                if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
                    g[(ix, iy)] = 1.0;
                }
            }
        }
    };
    paint_rect(280.0, 300.0, 520.0, 324.0);
    paint_rect(280.0, 676.0, 520.0, 700.0);
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mask = synthetic_external_mask();
    let config = HybridConfig::default();

    let (shapes, losses) = fit_mask_shapes(&mask, &config);
    println!(
        "fitted {} shapes; mean fit MSE {:.3} nm^2",
        shapes.len(),
        losses.iter().sum::<f64>() / losses.len().max(1) as f64
    );

    // MRC over the fitted curvilinear mask.
    let checker = MrcChecker::new(config.mrc);
    let before = checker.check(&shapes).len();
    let mut resolved = shapes.clone();
    let resolver = MrcResolver::new(config.mrc, ResolveConfig::default());
    let report = resolver.resolve(&mut resolved);
    println!(
        "MRC: {} violations fitted -> {} after resolving ({} rounds)",
        before,
        report.remaining.len(),
        report.rounds
    );

    let polys: Vec<Polygon> = resolved.iter().map(|s| s.to_polygon(8)).collect();
    std::fs::create_dir_all("out")?;
    let layers = [SvgLayer {
        name: "fitted",
        polygons: &polys,
        fill: "#3b6ea5",
        stroke: "#88c0d0",
        stroke_width: 2.0,
        opacity: 0.8,
    }];
    write_svg(
        BufWriter::new(File::create("out/fitted_external.svg")?),
        1024.0,
        1024.0,
        &layers,
    )?;
    println!("wrote out/fitted_external.svg");
    Ok(())
}
