//! The ILT-OPC hybrid flow (the Fig. 6(d) scenario): run pixel ILT on a
//! metal clip, fit the result with cardinal splines (Algorithm 1), resolve
//! the mask rule violations, and compare raw-ILT vs hybrid scores.
//!
//! ```sh
//! cargo run --release --example hybrid_ilt [clip-index]
//! ```

use cardopc::litho::rasterize;
use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7);
    let clips = metal_clips();
    let clip = clips.get(index).ok_or("clip index out of range (0..10)")?;
    println!("hybrid ILT-OPC on {clip}");

    // 6 nm pixels keep the ILT stage fast while resolving 70 nm wires.
    let engine = engine_for_extent(clip.width(), clip.height(), 6.0)?;
    let config = HybridConfig::default();
    let out = run_hybrid(&engine, clip.targets(), &config)?;

    println!(
        "pixel ILT: {} iterations, loss {:.2e} -> {:.2e}",
        out.ilt.loss_history.len(),
        out.ilt.loss_history.first().copied().unwrap_or(0.0),
        out.ilt.loss_history.last().copied().unwrap_or(0.0),
    );
    println!(
        "fitted {} shapes (mean fit MSE {:.3} nm^2), kept {} after MRC",
        out.fitted_shapes.len(),
        out.mean_fit_loss,
        out.shapes.len(),
    );
    println!(
        "MRC violations: {} before resolving -> {} after (paper: 43.8 -> 0)",
        out.violations_before, out.violations_after,
    );
    println!(
        "raw ILT : L2 {:8.0} nm^2 | PVB {:8.0} nm^2 | EPE violations {}",
        out.ilt_eval.l2_nm2, out.ilt_eval.pvb_nm2, out.ilt_eval.epe_violations,
    );
    println!(
        "hybrid  : L2 {:8.0} nm^2 | PVB {:8.0} nm^2 | EPE violations {}",
        out.hybrid_eval.l2_nm2, out.hybrid_eval.pvb_nm2, out.hybrid_eval.epe_violations,
    );

    std::fs::create_dir_all("out")?;
    out.ilt
        .mask
        .write_pgm(BufWriter::new(File::create("out/hybrid_ilt_mask.pgm")?))?;
    let (w, h, p) = (engine.width(), engine.height(), engine.pitch());
    let fitted = rasterize(&out.mask_polygons(8), w, h, p);
    fitted.write_pgm(BufWriter::new(File::create("out/hybrid_fitted_mask.pgm")?))?;
    println!("wrote out/hybrid_ilt_mask.pgm and out/hybrid_fitted_mask.pgm");
    Ok(())
}
