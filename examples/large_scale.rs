//! Large-scale OPC (the Fig. 6(c) scenario): optimise a standard-cell-style
//! window of the synthetic `gcd` metal layer with the paper's large-scale
//! parameters (l_c = l_u = 40 nm, 8 nm moves, 10 iterations).
//!
//! ```sh
//! cargo run --release --example large_scale [window-size-nm]
//! ```

use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7_500.0);

    // Generate the full 30x30 µm gcd tile, then optimise an interior
    // window (the tiling convention of §IV-B).
    let tile = large_tile(DesignKind::Gcd, 0);
    let clip = tile.crop(Point::new(10_000.0, 10_000.0), window, window, "gcd-window");
    println!(
        "optimising {} of the gcd tile ({} shapes in window)",
        clip.name(),
        clip.targets().len()
    );

    let config = OpcConfig::large_scale();
    let engine = engine_for_extent(clip.width(), clip.height(), config.pitch)?;
    println!(
        "engine grid {}x{} at {} nm/px",
        engine.width(),
        engine.height(),
        engine.pitch()
    );

    let start = std::time::Instant::now();
    let flow = CardOpc::new(config);
    let outcome = flow.run_with_engine(&clip, &engine)?;
    let elapsed = start.elapsed();

    println!(
        "EPE violations (>{:.0} nm): {} of {} sites",
        outcome.evaluation.epe_tolerance,
        outcome.evaluation.epe_violations,
        outcome.evaluation.epe.values.len(),
    );
    println!(
        "PVB {:.4} µm^2 | L2 {:.4} µm^2 | MRC {} -> {}",
        outcome.evaluation.pvb_nm2 / 1e6,
        outcome.evaluation.l2_nm2 / 1e6,
        outcome.mrc_initial_violations,
        outcome.mrc_remaining,
    );
    println!(
        "wall time: {elapsed:.2?} for {} shapes",
        clip.targets().len()
    );
    Ok(())
}
