//! Metal-layer curvilinear OPC vs the rectilinear baseline (the Fig. 6(b)
//! scenario): run both flows on one metal clip and compare their scores.
//!
//! ```sh
//! cargo run --release --example metal_opc [clip-index]
//! ```

use cardopc::litho::rasterize;
use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7); // M8 by default: the simplest published clip
    let clips = metal_clips();
    let clip = clips.get(index).ok_or("clip index out of range (0..10)")?;
    println!("clip {clip}");

    let config = OpcConfig::metal();
    let engine = engine_for_extent(clip.width(), clip.height(), config.pitch)?;
    let samples = config.samples_per_segment;

    // CardOPC (curvilinear).
    let flow = CardOpc::new(config);
    let card = flow.run_with_engine(clip, &engine)?;
    println!(
        "CardOPC      : EPE {:7.1} nm | PVB {:9.0} nm^2 | L2 {:8.0} nm^2 | MRC {} -> {}",
        card.evaluation.epe_sum_nm,
        card.evaluation.pvb_nm2,
        card.evaluation.l2_nm2,
        card.mrc_initial_violations,
        card.mrc_remaining,
    );

    // Calibre-like rectilinear baseline with the same budget.
    let rect = RectOpc::new(RectOpcConfig::calibre_like_metal());
    let rect_out =
        rect.run_with_engine(clip, &engine, &[], MeasureConvention::MetalSpacing(60.0))?;
    println!(
        "rect baseline: EPE {:7.1} nm | PVB {:9.0} nm^2 | L2 {:8.0} nm^2",
        rect_out.evaluation.epe_sum_nm, rect_out.evaluation.pvb_nm2, rect_out.evaluation.l2_nm2,
    );

    if card.evaluation.epe_sum_nm <= rect_out.evaluation.epe_sum_nm {
        println!("=> curvilinear OPC wins on EPE, as Table II reports.");
    } else {
        println!("=> rectilinear baseline won on this clip (check parameters).");
    }

    std::fs::create_dir_all("out")?;
    let (w, h, p) = (engine.width(), engine.height(), engine.pitch());
    let mask = rasterize(&card.mask_polygons(samples), w, h, p);
    mask.write_pgm(BufWriter::new(File::create("out/metal_mask.pgm")?))?;
    println!("wrote out/metal_mask.pgm");
    Ok(())
}
