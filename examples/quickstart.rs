//! Quickstart: optimise one via-layer clip with CardOPC and print its
//! scores.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cardopc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // V1: a 2x2 µm clip with two 70 nm vias (synthetic stand-in for the
    // published testcase; see DESIGN.md).
    let clip = &via_clips()[0];
    println!("optimising {clip} with the paper's via-layer parameters ...");

    // The preset carries the published parameters: l_c = 20 nm, l_u = 30 nm,
    // 2 nm moves, 32 iterations with a x0.5 decay at 16, tension s = 0.6.
    let flow = CardOpc::new(OpcConfig::via());
    let outcome = flow.run(clip)?;

    println!("resist threshold (calibrated): {:.4}", outcome.threshold);
    println!(
        "EPE sum over {} measure points: {:.1} nm (mean {:.2} nm)",
        outcome.evaluation.epe.values.len(),
        outcome.evaluation.epe_sum_nm,
        outcome.evaluation.epe.mean_abs(),
    );
    println!("PV band: {:.0} nm^2", outcome.evaluation.pvb_nm2);
    println!("L2 error: {:.0} nm^2", outcome.evaluation.l2_nm2);
    println!(
        "MRC: {} violations found, {} remaining after resolving",
        outcome.mrc_initial_violations, outcome.mrc_remaining
    );
    println!(
        "convergence (sum |EPE| at anchors): {:.0} -> {:.0} over {} iterations",
        outcome.epe_history.first().copied().unwrap_or(0.0),
        outcome.epe_history.last().copied().unwrap_or(0.0),
        outcome.epe_history.len(),
    );
    Ok(())
}
