//! Real-design ingestion: read a GDSII file, correct it, and write the
//! curvilinear mask back out as GDSII.
//!
//! ```sh
//! cargo run --release --example real_design
//! ```
//!
//! Reads the checked-in 308-byte `examples/minimal.gds` (two targets on
//! layer 1, plus the 255:0 clip-window marker the exporter adds) and
//! writes `out/minimal-mask.gds` — mains on layer 2, SRAFs on layer 3,
//! at a 0.01 nm database grid. The same flow drives any foundry file:
//! `cardopc --design chip.gds --layer N:D --out-gds mask.gds`.

use cardopc::gds::LayerFilter;
use cardopc::layout::{read_gds_clip, TARGET_LAYER};
use cardopc::litho::WorkerPool;
use cardopc::opc::OpcConfig;
use cardopc::runtime::{run_clip, write_mask_gds, MaskGdsOptions, RunConfig, TilingConfig};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = Path::new("examples/minimal.gds");
    let clip = read_gds_clip(path, LayerFilter::Layer(TARGET_LAYER), None)?;
    println!(
        "read {}: clip {} with {} targets",
        path.display(),
        clip.name(),
        clip.targets().len()
    );

    let mut opc = OpcConfig::large_scale();
    opc.pitch = 16.0;
    opc.iterations = 4;
    let config = RunConfig::new(
        opc,
        TilingConfig {
            tile_size: 512.0,
            halo: 256.0,
        },
    );
    let outcome = run_clip(&clip, &config, WorkerPool::global())?;
    let stitched = outcome.stitched.expect("single-tile run completes");
    println!(
        "corrected: {} mains, {} srafs",
        stitched.mains.len(),
        stitched.srafs.len()
    );

    let bytes = write_mask_gds(&stitched, clip.name(), &MaskGdsOptions::default())?;
    std::fs::create_dir_all("out")?;
    let out = Path::new("out/minimal-mask.gds");
    std::fs::write(out, &bytes)?;
    println!("wrote {} ({} bytes)", out.display(), bytes.len());
    Ok(())
}
