//! Via-layer curvilinear OPC (the Fig. 6(a) scenario): optimise a via clip
//! and write the target, optimised mask, aerial image and printed contours
//! as PGM images under `out/`.
//!
//! ```sh
//! cargo run --release --example via_opc [clip-index]
//! ```

use cardopc::geometry::svg::{write_svg, SvgLayer};
use cardopc::geometry::trace_contours;
use cardopc::litho::{rasterize, ProcessCondition};
use cardopc::opc::engine_for_extent;
use cardopc::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn save(grid: &Grid, path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    grid.write_pgm(BufWriter::new(file))?;
    println!("wrote {path}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4); // V5 by default: four vias
    let clips = via_clips();
    let clip = clips.get(index).ok_or("clip index out of range (0..13)")?;
    println!("running CardOPC on {clip}");

    let config = OpcConfig::via();
    let engine = engine_for_extent(clip.width(), clip.height(), config.pitch)?;
    let samples = config.samples_per_segment;
    let flow = CardOpc::new(config);
    let outcome = flow.run_with_engine(clip, &engine)?;

    println!(
        "EPE {:.1} nm | PVB {:.0} nm^2 | L2 {:.0} nm^2 | MRC {} -> {}",
        outcome.evaluation.epe_sum_nm,
        outcome.evaluation.pvb_nm2,
        outcome.evaluation.l2_nm2,
        outcome.mrc_initial_violations,
        outcome.mrc_remaining,
    );

    std::fs::create_dir_all("out")?;
    let (w, h, p) = (engine.width(), engine.height(), engine.pitch());

    let target = rasterize(clip.targets(), w, h, p);
    save(&target, "out/via_target.pgm")?;

    let mask_polys = outcome.mask_polygons(samples);
    let mask = rasterize(&mask_polys, w, h, p);
    save(&mask, "out/via_mask.pgm")?;

    let aerial = engine.aerial_image(&mask)?;
    save(&aerial, "out/via_aerial.pgm")?;

    let printed = engine.print(&mask, ProcessCondition::NOMINAL)?;
    save(&printed, "out/via_printed.pgm")?;

    // Vector plot in the style of Fig. 6(a): targets, curvilinear mask,
    // printed contours.
    let printed_contours = trace_contours(&aerial, engine.threshold());
    let layers = [
        SvgLayer {
            name: "mask",
            polygons: &mask_polys,
            fill: "#3b6ea5",
            stroke: "none",
            stroke_width: 0.0,
            opacity: 0.75,
        },
        SvgLayer {
            name: "targets",
            polygons: clip.targets(),
            fill: "none",
            stroke: "#e5c07b",
            stroke_width: 3.0,
            opacity: 1.0,
        },
        SvgLayer {
            name: "printed",
            polygons: &printed_contours,
            fill: "none",
            stroke: "#98c379",
            stroke_width: 3.0,
            opacity: 1.0,
        },
    ];
    let file = File::create("out/via_result.svg")?;
    write_svg(BufWriter::new(file), clip.width(), clip.height(), &layers)?;
    println!("wrote out/via_result.svg");
    Ok(())
}
