//! Integration tests of the content-addressed tile correction cache.
//!
//! The clip is a strictly periodic row of one cell: interior tile windows
//! are translations of each other, so their canonical cache keys collide
//! and the scheduler replays the stored correction instead of re-running
//! it. The headline assertions: a run served (partly or fully) from the
//! cache produces a timing-free manifest and stitched mask **byte
//! identical** to an uncached run — across worker counts, across a
//! process boundary (drop + reopen of the persisted store), and across a
//! checkpoint resume.

use cardopc::geometry::{Point, Polygon};
use cardopc::layout::Clip;
use cardopc::litho::WorkerPool;
use cardopc::opc::OpcConfig;
use cardopc::runtime::{
    run_clip, run_clip_controlled, CacheConfig, RunConfig, RunControl, RunOutcome, TileCache,
    TilingConfig,
};
use std::path::PathBuf;

/// A 4096×1024 nm clip holding the same two-wire cell once per 1024 nm
/// period. With 1024 nm tiles + 512 nm halo the partition is 4×1; the two
/// interior tiles see unclamped 2048 nm windows whose contents are exact
/// translations of each other — one unique interior pattern, corrected
/// once. (The 0.5 nm offset keeps wire edges off the rasteriser's
/// sub-scanlines, as in the runtime tests.)
fn periodic_clip() -> Clip {
    let mut targets = Vec::new();
    for i in 0..4 {
        let dx = i as f64 * 1024.0;
        targets.push(Polygon::rect(
            Point::new(dx + 300.5, 220.5),
            Point::new(dx + 380.5, 700.5),
        ));
        targets.push(Polygon::rect(
            Point::new(dx + 460.5, 220.5),
            Point::new(dx + 700.5, 300.5),
        ));
    }
    Clip::new("periodic-row", 4096.0, 1024.0, targets)
}

fn config() -> OpcConfig {
    let mut c = OpcConfig::large_scale();
    c.pitch = 16.0;
    c.iterations = 3;
    c.mrc = None;
    c
}

fn run_config() -> RunConfig {
    RunConfig::new(
        config(),
        TilingConfig {
            tile_size: 1024.0,
            halo: 512.0,
        },
    )
}

fn run_cached(clip: &Clip, cfg: &RunConfig, workers: usize, cache: &TileCache) -> RunOutcome {
    let pool = WorkerPool::new(workers);
    let control = RunControl {
        cache: Some(cache),
        ..RunControl::default()
    };
    run_clip_controlled(clip, cfg, &pool, &control).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cardopc-cache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_output(cached: &RunOutcome, baseline: &RunOutcome) {
    assert_eq!(
        cached.manifest.to_json(false),
        baseline.manifest.to_json(false),
        "timing-free manifests must be byte-identical"
    );
    assert_eq!(
        cached.stitched.as_ref().unwrap().mains,
        baseline.stitched.as_ref().unwrap().mains
    );
    assert_eq!(
        cached.stitched.as_ref().unwrap().srafs,
        baseline.stitched.as_ref().unwrap().srafs
    );
}

#[test]
fn cached_runs_are_byte_identical_across_cache_states_and_workers() {
    let clip = periodic_clip();
    let cfg = run_config();
    let baseline = run_clip(&clip, &cfg, &WorkerPool::new(2)).unwrap();
    assert!(baseline.complete);
    assert_eq!(baseline.manifest.cache_hits, 0);

    let dir = temp_dir("identity");
    let cache_cfg = CacheConfig {
        dir: Some(dir.clone()),
        ..CacheConfig::default()
    };

    // Cold run: the two congruent interior tiles collapse to one
    // correction — the second is already a hit within the same run.
    let cold_cache = TileCache::open(&cache_cfg).unwrap();
    let cold = run_cached(&clip, &cfg, 2, &cold_cache);
    assert!(cold.complete);
    assert_eq!(cold.manifest.cache_hits + cold.manifest.cache_misses, 4);
    assert!(
        cold.manifest.cache_hits >= 1,
        "congruent interior tiles must share an entry (hits {})",
        cold.manifest.cache_hits
    );
    assert_same_output(&cold, &baseline);

    // Drop persists the store; reopening simulates a later process. The
    // warm run replays every tile, on a different worker count.
    drop(cold_cache);
    let warm_cache = TileCache::open(&cache_cfg).unwrap();
    let warm = run_cached(&clip, &cfg, 1, &warm_cache);
    assert!(warm.complete);
    assert_eq!(warm.manifest.cache_hits, 4, "warm run must be all hits");
    assert_eq!(warm.manifest.cache_misses, 0);
    assert_same_output(&warm, &baseline);

    drop(warm_cache);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cached_resume_reproduces_uninterrupted_run() {
    let clip = periodic_clip();
    let baseline = run_clip(&clip, &run_config(), &WorkerPool::new(2)).unwrap();

    let dir = temp_dir("resume");
    let cache = TileCache::open(&CacheConfig {
        dir: Some(dir.join("cache")),
        ..CacheConfig::default()
    })
    .unwrap();

    // "Kill" a cached run after 2 of 4 tiles via the tile budget…
    let mut cfg = run_config();
    cfg.run_dir = Some(dir.join("run"));
    cfg.max_tiles = Some(2);
    let partial = run_cached(&clip, &cfg, 2, &cache);
    assert!(!partial.complete);
    assert_eq!(partial.manifest.executed, 2);

    // …then resume against the same checkpoint and cache: checkpointed
    // tiles are resumed (not re-fetched), the rest come from the cache or
    // a fresh correction, and the result matches the uncached baseline.
    cfg.max_tiles = None;
    let resumed = run_cached(&clip, &cfg, 2, &cache);
    assert!(resumed.complete);
    assert_eq!(resumed.manifest.resumed, 2);
    assert_eq!(resumed.manifest.executed, 2);
    assert_same_output(&resumed, &baseline);

    drop(cache);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn read_only_and_memory_caches_degrade_gracefully() {
    let clip = periodic_clip();
    let cfg = run_config();
    let baseline = run_clip(&clip, &cfg, &WorkerPool::new(2)).unwrap();

    // A read-only cache over an empty directory: nothing to serve from
    // disk, nothing written to disk, results unchanged.
    let dir = temp_dir("readonly");
    std::fs::create_dir_all(&dir).unwrap();
    let ro = TileCache::open(&CacheConfig {
        dir: Some(dir.clone()),
        read_only: true,
        ..CacheConfig::default()
    })
    .unwrap();
    assert!(ro.is_read_only());
    let outcome = run_cached(&clip, &cfg, 2, &ro);
    assert_same_output(&outcome, &baseline);
    drop(ro);
    assert!(
        !dir.join("cache.jsonl").exists(),
        "read-only caches must not create a store file"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // A purely in-memory cache behaves the same within one run.
    let memory = TileCache::open(&CacheConfig::default()).unwrap();
    let outcome = run_cached(&clip, &cfg, 2, &memory);
    assert!(outcome.manifest.cache_hits >= 1);
    assert_same_output(&outcome, &baseline);
}
