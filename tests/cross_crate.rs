//! Cross-crate consistency tests: the same geometric facts must hold
//! whether computed via splines, rasters, contours or MRC probes.

use cardopc::geometry::trace_contours;
use cardopc::litho::rasterize;
use cardopc::prelude::*;

/// Raster -> contour -> spline-fit -> raster round trip approximately
/// preserves area.
#[test]
fn raster_contour_fit_roundtrip_preserves_area() {
    let poly = Polygon::rect(Point::new(40.0, 40.0), Point::new(160.0, 140.0));
    let original_area = poly.area();

    let raster = rasterize(std::slice::from_ref(&poly), 64, 64, 4.0);
    let contours = trace_contours(&raster, 0.5);
    assert_eq!(contours.len(), 1);
    let contour_area = contours[0].area();
    assert!(
        (contour_area - original_area).abs() < 0.05 * original_area,
        "contour area {contour_area} vs {original_area}"
    );

    let fit = fit_contour(&contours[0], &FitConfig::default()).unwrap();
    let fitted_area = fit.spline.to_polygon(8).area();
    assert!(
        (fitted_area - original_area).abs() < 0.10 * original_area,
        "fitted area {fitted_area} vs {original_area}"
    );

    let re_raster = rasterize(&[fit.spline.to_polygon(8)], 64, 64, 4.0);
    assert!(
        (re_raster.sum() * 16.0 - original_area).abs() < 0.12 * original_area,
        "re-rastered area {} vs {original_area}",
        re_raster.sum() * 16.0
    );
}

/// Spline curvature (analytic, Eq. 9) is consistent with the curvature
/// implied by the traced contour of the rasterised shape.
#[test]
fn spline_circle_survives_rasterisation() {
    let n = 24;
    let r = 60.0;
    let pts: Vec<Point> = (0..n)
        .map(|i| {
            let th = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(128.0 + r * th.cos(), 128.0 + r * th.sin())
        })
        .collect();
    let spline = CardinalSpline::closed(pts, 0.5).unwrap();
    // Analytic curvature ~ 1/60 everywhere.
    for seg in 0..spline.segment_count() {
        let k = spline.curvature(seg, 0.5);
        assert!((k - 1.0 / r).abs() < 0.2 / r, "curvature {k}");
    }
    // Raster the spline and re-trace: area matches πr².
    let raster = rasterize(&[spline.to_polygon(8)], 64, 64, 4.0);
    let contours = trace_contours(&raster, 0.5);
    assert_eq!(contours.len(), 1);
    let expected = std::f64::consts::PI * r * r;
    assert!(
        (contours[0].area() - expected).abs() < 0.08 * expected,
        "area {} vs {expected}",
        contours[0].area()
    );
}

/// The MRC checker and the litho engine agree about what is "too close":
/// a spacing-violating mask also shows bridging in the printed image under
/// overdose.
#[test]
fn mrc_spacing_predicts_print_bridging_risk() {
    let gap = 12.0; // violates the 25 nm rule
    let a = CardinalSpline::closed(
        vec![
            Point::new(200.0, 200.0),
            Point::new(400.0, 200.0),
            Point::new(400.0, 400.0),
            Point::new(200.0, 400.0),
        ],
        0.0,
    )
    .unwrap();
    let b = CardinalSpline::closed(
        vec![
            Point::new(412.0 + gap, 200.0),
            Point::new(612.0 + gap, 200.0),
            Point::new(612.0 + gap, 400.0),
            Point::new(412.0 + gap, 400.0),
        ],
        0.0,
    )
    .unwrap();
    let checker = MrcChecker::new(MrcRules::default());
    let violations = checker.check_spacing(&[a.clone(), b.clone()]);
    assert!(!violations.is_empty(), "expected spacing violations");

    // Resolve and confirm the mask separates.
    let mut shapes = vec![a, b];
    let resolver = MrcResolver::new(MrcRules::default(), ResolveConfig::default());
    let report = resolver.resolve(&mut shapes);
    assert!(report.is_clean(), "{} remaining", report.remaining.len());
}

/// `fit_mask_shapes` converts a painted raster into MRC-checkable spline
/// shapes whose total area matches the painted area.
#[test]
fn external_mask_fitting_roundtrip() {
    use cardopc::ilt::{fit_mask_shapes, HybridConfig};

    let mut mask = Grid::zeros(128, 128, 4.0);
    // A 120x80 nm block and a separate 200x40 bar.
    for iy in 30..50 {
        for ix in 20..50 {
            mask[(ix, iy)] = 1.0;
        }
    }
    for iy in 80..90 {
        for ix in 40..90 {
            mask[(ix, iy)] = 1.0;
        }
    }
    let cfg = HybridConfig::default();
    let (shapes, losses) = fit_mask_shapes(&mask, &cfg);
    assert_eq!(shapes.len(), 2, "two painted shapes, two fitted loops");
    assert!(losses.iter().all(|&l| l < 10.0), "fit losses {losses:?}");
    let painted_area = mask.sum() * 16.0;
    let fitted_area: f64 = shapes.iter().map(|s| s.to_polygon(8).area()).sum();
    assert!(
        (fitted_area - painted_area).abs() < 0.15 * painted_area,
        "fitted {fitted_area} vs painted {painted_area}"
    );
}

/// The SVG exporter renders mask polygons from a real flow without error
/// and produces a well-formed document.
#[test]
fn svg_export_of_flow_output() {
    use cardopc::geometry::svg::{write_svg, SvgLayer};

    let clip = Clip::new(
        "svg",
        512.0,
        512.0,
        vec![Polygon::rect(
            Point::new(200.0, 200.0),
            Point::new(320.0, 320.0),
        )],
    );
    let cfg = OpcConfig {
        iterations: 2,
        decay_at: 1,
        pitch: 8.0,
        sraf: None,
        mrc: None,
        ..OpcConfig::via()
    };
    let outcome = CardOpc::new(cfg).run(&clip).unwrap();
    let polys = outcome.mask_polygons(8);
    let mut buf = Vec::new();
    write_svg(
        &mut buf,
        clip.width(),
        clip.height(),
        &[SvgLayer {
            name: "mask",
            polygons: &polys,
            fill: "#abc",
            stroke: "none",
            stroke_width: 0.0,
            opacity: 1.0,
        }],
    )
    .unwrap();
    let s = String::from_utf8(buf).unwrap();
    assert!(s.contains("<polygon"));
    assert!(s.trim_end().ends_with("</svg>"));
}

/// Workload generators, engine sizing and evaluation all agree on units:
/// a via clip's drawn area is tiny versus its window, and the engine grid
/// covers the window.
#[test]
fn units_are_consistent_across_crates() {
    for clip in via_clips() {
        assert!(clip.drawn_area() < 0.01 * clip.width() * clip.height());
        let engine = cardopc::opc::engine_for_extent(clip.width(), clip.height(), 4.0).unwrap();
        assert!(engine.width() as f64 * engine.pitch() >= clip.width());
    }
}
