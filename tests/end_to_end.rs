//! Cross-crate integration tests: the full CardOPC pipeline against the
//! rectilinear baseline on small clips (debug-build friendly sizes; the
//! paper-scale runs live in the release benchmark harness).

use cardopc::opc::{engine_for_extent, evaluate_mask};
use cardopc::prelude::*;

/// A 1 µm clip with two 120 nm squares — small enough for debug builds.
fn two_square_clip() -> Clip {
    Clip::new(
        "it2",
        1024.0,
        1024.0,
        vec![
            Polygon::rect(Point::new(250.0, 440.0), Point::new(370.0, 560.0)),
            Polygon::rect(Point::new(620.0, 440.0), Point::new(740.0, 560.0)),
        ],
    )
}

fn fast_via_config() -> OpcConfig {
    OpcConfig {
        iterations: 16,
        decay_at: 10,
        pitch: 8.0,
        sraf: None,
        mrc: None,
        ..OpcConfig::via()
    }
}

#[test]
fn cardopc_beats_no_opc_on_all_metrics_history() {
    let clip = two_square_clip();
    let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();

    let uncorrected = evaluate_mask(
        &engine,
        clip.targets(),
        clip.targets(),
        MeasureConvention::ViaEdgeCenters,
        0.02,
        40.0,
    )
    .unwrap();

    let outcome = CardOpc::new(fast_via_config())
        .run_with_engine(&clip, &engine)
        .unwrap();

    assert!(
        outcome.evaluation.l2_nm2 <= uncorrected.l2_nm2,
        "CardOPC L2 {} vs uncorrected {}",
        outcome.evaluation.l2_nm2,
        uncorrected.l2_nm2
    );
    // Convergence: the anchor EPE must at least halve.
    let first = outcome.epe_history[0];
    let last = *outcome.epe_history.last().unwrap();
    assert!(last < 0.7 * first, "weak convergence: {first} -> {last}");
}

#[test]
fn cardopc_and_rect_baseline_run_on_same_engine() {
    let clip = two_square_clip();
    let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();

    let card = CardOpc::new(fast_via_config())
        .run_with_engine(&clip, &engine)
        .unwrap();

    let rect_cfg = RectOpcConfig {
        iterations: 16,
        decay_at: 10,
        pitch: 8.0,
        ..RectOpcConfig::calibre_like_via()
    };
    let rect = RectOpc::new(rect_cfg)
        .run_with_engine(&clip, &engine, &[], MeasureConvention::ViaEdgeCenters)
        .unwrap();

    // Both flows must converge; the comparative claim (CardOPC <= rect on
    // EPE) is checked at paper scale in the benches, but even at this
    // reduced budget both must clearly improve over doing nothing.
    assert!(card.evaluation.epe_sum_nm.is_finite());
    assert!(rect.evaluation.epe_sum_nm.is_finite());
    assert!(*card.epe_history.last().unwrap() < card.epe_history[0]);
    assert!(*rect.epe_history.last().unwrap() < rect.epe_history[0]);
}

#[test]
fn mrc_stage_leaves_mask_clean_and_scored() {
    let clip = two_square_clip();
    let mut cfg = fast_via_config();
    cfg.mrc = Some(MrcRules::default());
    let engine = engine_for_extent(clip.width(), clip.height(), 8.0).unwrap();
    let outcome = CardOpc::new(cfg).run_with_engine(&clip, &engine).unwrap();

    // Independent re-check of the delivered mask.
    let shapes: Vec<_> = outcome.shapes.iter().map(|s| s.spline.clone()).collect();
    let checker = MrcChecker::new(MrcRules::default());
    let remaining = checker.check(&shapes);
    assert_eq!(
        remaining.len(),
        outcome.mrc_remaining,
        "flow-reported MRC state disagrees with independent checker"
    );
}

#[test]
fn via_clips_all_initialise() {
    // Initialisation (dissect + control points + SRAFs) must succeed on
    // every published-statistics testcase.
    let flow = CardOpc::new(OpcConfig::via());
    for clip in via_clips() {
        let shapes = flow.initialize(&clip).unwrap();
        assert!(
            shapes.iter().filter(|s| !s.is_sraf).count() == clip.targets().len(),
            "{}: main shape count mismatch",
            clip.name()
        );
        for s in &shapes {
            assert!(s.control_count() >= 4);
        }
    }
}

#[test]
fn metal_clips_all_initialise() {
    let flow = CardOpc::new(OpcConfig::metal());
    for clip in metal_clips() {
        let shapes = flow.initialize(&clip).unwrap();
        assert!(!shapes.is_empty(), "{}", clip.name());
    }
}

#[test]
fn large_tiles_initialise_with_large_config() {
    let flow = CardOpc::new(OpcConfig::large_scale());
    let tile = large_tile(DesignKind::Gcd, 0);
    let window = tile.crop(Point::new(12_000.0, 12_000.0), 3_000.0, 3_000.0, "w");
    let shapes = flow.initialize(&window).unwrap();
    assert_eq!(shapes.len(), window.targets().len());
}
