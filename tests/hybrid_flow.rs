//! Integration tests of the ILT → fit → MRC-resolve hybrid flow.

use cardopc::ilt::{HybridConfig, IltConfig};
use cardopc::litho::LithoEngine;
use cardopc::prelude::*;
use cardopc::spline::fit::resample_closed;

fn engine() -> LithoEngine {
    let cfg = OpticsConfig {
        source_rings: 1,
        points_per_ring: 4,
        ..OpticsConfig::default()
    };
    let mut e = LithoEngine::new(cfg, 128, 128, 8.0).unwrap();
    e.calibrate_threshold();
    e
}

fn fast_hybrid() -> HybridConfig {
    HybridConfig {
        ilt: IltConfig {
            iterations: 20,
            ..IltConfig::default()
        },
        convention: MeasureConvention::ViaEdgeCenters,
        ..HybridConfig::default()
    }
}

#[test]
fn hybrid_reaches_zero_mrc_violations() {
    let e = engine();
    let targets = vec![
        Polygon::rect(Point::new(300.0, 300.0), Point::new(480.0, 480.0)),
        Polygon::rect(Point::new(600.0, 300.0), Point::new(780.0, 480.0)),
    ];
    let cfg = fast_hybrid();
    let out = run_hybrid(&e, &targets, &cfg).unwrap();
    assert_eq!(
        out.violations_after, 0,
        "resolving left {} violations",
        out.violations_after
    );
    // Independent verification with a fresh checker under the same rules
    // the flow resolved against (SRAF-scale limits).
    let checker = MrcChecker::new(cfg.mrc);
    assert!(checker.check(&out.shapes).is_empty());
}

#[test]
fn hybrid_fidelity_close_to_ilt() {
    let e = engine();
    let targets = vec![Polygon::rect(
        Point::new(380.0, 380.0),
        Point::new(620.0, 620.0),
    )];
    let out = run_hybrid(&e, &targets, &fast_hybrid()).unwrap();
    // The hybrid's L2 should stay in the same regime as raw ILT (the
    // paper's Fig. 7 shows the hybrid matching or beating the comparators).
    assert!(
        out.hybrid_eval.l2_nm2 <= 3.0 * out.ilt_eval.l2_nm2 + 2000.0,
        "hybrid L2 {} vs ILT L2 {}",
        out.hybrid_eval.l2_nm2,
        out.ilt_eval.l2_nm2
    );
}

#[test]
fn fit_recovers_ilt_contour_geometry() {
    // Round-trip check at the geometry level: the fitted spline resamples
    // to points close to the traced ILT contour.
    let e = engine();
    let targets = vec![Polygon::rect(
        Point::new(380.0, 380.0),
        Point::new(620.0, 620.0),
    )];
    let out = run_hybrid(&e, &targets, &fast_hybrid()).unwrap();
    assert!(!out.fitted_shapes.is_empty());
    assert!(
        out.mean_fit_loss < 25.0,
        "fit MSE too high: {} nm^2",
        out.mean_fit_loss
    );
}

#[test]
fn resample_and_fit_are_deterministic() {
    // The whole flow is deterministic: same inputs -> identical shapes.
    let e = engine();
    let targets = vec![Polygon::rect(
        Point::new(380.0, 380.0),
        Point::new(620.0, 620.0),
    )];
    let a = run_hybrid(&e, &targets, &fast_hybrid()).unwrap();
    let b = run_hybrid(&e, &targets, &fast_hybrid()).unwrap();
    assert_eq!(a.shapes.len(), b.shapes.len());
    for (sa, sb) in a.shapes.iter().zip(&b.shapes) {
        assert_eq!(sa.control_points(), sb.control_points());
    }
    // Sanity: helper used by the fit is stable too.
    let loop_pts: Vec<Point> = (0..40)
        .map(|i| {
            let th = std::f64::consts::TAU * i as f64 / 40.0;
            Point::new(th.cos(), th.sin())
        })
        .collect();
    assert_eq!(
        resample_closed(&loop_pts, 10),
        resample_closed(&loop_pts, 10)
    );
}
