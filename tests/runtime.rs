//! Integration tests of the tiled full-chip runtime.
//!
//! Equivalence: tiling with a halo big enough that every tile's window
//! contains the whole mask, with pixel-aligned window origins and the same
//! grid size as the monolithic engine, makes each tile's raster an exact
//! cyclic shift of the monolithic raster. FFT circular convolution is
//! shift-equivariant, so tiled correction must reproduce the monolithic
//! flow up to floating-point reassociation (~1e-12); the tests assert
//! agreement within 1e-6.

use cardopc::geometry::Point;
use cardopc::layout::{large_tile, Clip, DesignKind};
use cardopc::litho::WorkerPool;
use cardopc::opc::{CardOpc, OpcConfig};
use cardopc::runtime::{run_clip, RunConfig, RunOutcome, TilingConfig};

/// A 2048×2048 nm clip whose content (a real crop of the synthetic gcd
/// metal tile) sits entirely inside [624, 1424]² — within every tile
/// window of a 2×2, tile 1024 nm + halo 512 nm partition.
fn centered_clip() -> Clip {
    let tile = large_tile(DesignKind::Gcd, 0);
    // Real gcd wires are mostly longer than the 800 nm content budget, so
    // take the first six short ones and re-place them on a 140 nm track
    // grid inside [640, 1424]² — same geometry class, bounded extent.
    let shapes: Vec<_> = tile
        .targets()
        .iter()
        .filter(|t| t.bbox().width() <= 760.0)
        .take(6)
        .enumerate()
        .map(|(i, t)| {
            // The 0.5 nm offset keeps every straight wire edge 1.5 nm away
            // from the rasteriser's sub-scanlines (even integers at pitch
            // 16), so the 1-ulp coordinate noise from translating tile
            // windows can never flip a scanline-crossing test.
            let slot = Point::new(640.5, 650.5 + i as f64 * 140.0);
            t.translated(slot - t.bbox().min)
        })
        .collect();
    assert_eq!(shapes.len(), 6, "gcd tile must have short wires");
    Clip::new("gcd-center", 2048.0, 2048.0, shapes)
}

/// Pitch 16 keeps both the monolithic clip and the 2048 nm tile windows on
/// 128² grids (fast enough for debug-mode tests) and divides the 512 nm
/// window origins exactly (pixel alignment).
fn config(iterations: usize) -> OpcConfig {
    let mut c = OpcConfig::large_scale();
    c.pitch = 16.0;
    c.iterations = iterations;
    c.mrc = None;
    c
}

fn tiling() -> TilingConfig {
    TilingConfig {
        tile_size: 1024.0,
        halo: 512.0,
    }
}

fn run_tiled(clip: &Clip, iterations: usize, workers: usize) -> RunOutcome {
    let pool = WorkerPool::new(workers);
    run_clip(clip, &RunConfig::new(config(iterations), tiling()), &pool).unwrap()
}

#[test]
fn tiled_run_matches_monolithic_within_1e6() {
    let clip = centered_clip();
    let iterations = 5;
    let monolithic = CardOpc::new(config(iterations)).run(&clip).unwrap();
    let tiled = run_tiled(&clip, iterations, 2);

    assert!(tiled.complete);
    let stitched = tiled.stitched.as_ref().unwrap();
    assert_eq!(tiled.manifest.nx, 2);
    assert_eq!(tiled.manifest.ny, 2);
    assert_eq!(stitched.mains.len(), clip.targets().len());
    assert_eq!(stitched.srafs.len(), 0);

    // Aggregated owned EPE history reproduces the monolithic history.
    assert_eq!(
        tiled.manifest.epe_history.len(),
        monolithic.epe_history.len()
    );
    for (iter, (t, m)) in tiled
        .manifest
        .epe_history
        .iter()
        .zip(&monolithic.epe_history)
        .enumerate()
    {
        assert!(
            (t - m).abs() <= 1e-6,
            "iteration {iter}: tiled {t} vs monolithic {m}"
        );
    }

    // Every corrected control point reproduces the monolithic position.
    for (i, main) in stitched.mains.iter().enumerate() {
        assert_eq!(main.global_id, Some(i));
        let reference = monolithic.shapes[i].spline.control_points();
        assert_eq!(main.control_points.len(), reference.len(), "shape {i}");
        for (a, b) in main.control_points.iter().zip(reference) {
            assert!(
                (a.x - b.x).abs() <= 1e-6 && (a.y - b.y).abs() <= 1e-6,
                "shape {i}: tiled ({}, {}) vs monolithic ({}, {})",
                a.x,
                a.y,
                b.x,
                b.y
            );
        }
    }
}

#[test]
fn tiled_run_is_deterministic_across_worker_counts() {
    let clip = centered_clip();
    let one = run_tiled(&clip, 3, 1);
    let four = run_tiled(&clip, 3, 4);

    // Bit-identical outputs, not merely close: scheduling order must not
    // leak into results.
    assert_eq!(
        one.stitched.as_ref().unwrap().mains,
        four.stitched.as_ref().unwrap().mains
    );
    assert_eq!(one.manifest.epe_history, four.manifest.epe_history);
    assert_eq!(one.manifest.to_json(false), four.manifest.to_json(false));
}

#[test]
fn checkpoint_resume_reproduces_uninterrupted_run() {
    let clip = centered_clip();
    let iterations = 3;
    let pool = WorkerPool::new(2);
    let base = std::env::temp_dir().join(format!("cardopc-runtime-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let interrupted_dir = base.join("interrupted");
    let fresh_dir = base.join("fresh");

    // "Kill" a run after 2 of 4 tiles via the tile budget.
    let mut cfg = RunConfig::new(config(iterations), tiling());
    cfg.run_dir = Some(interrupted_dir.clone());
    cfg.max_tiles = Some(2);
    let partial = run_clip(&clip, &cfg, &pool).unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.manifest.executed, 2);
    assert_eq!(partial.manifest.remaining, 2);
    assert!(partial.stitched.is_none());
    assert!(
        !interrupted_dir.join("manifest.json").exists(),
        "partial runs must not publish a manifest"
    );

    // Resume to completion: the 2 checkpointed tiles are not re-executed.
    cfg.max_tiles = None;
    let resumed = run_clip(&clip, &cfg, &pool).unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.manifest.resumed, 2);
    assert_eq!(resumed.manifest.executed, 2);
    assert!(interrupted_dir.join("manifest.json").exists());

    // An uninterrupted run in a fresh directory.
    let mut fresh_cfg = RunConfig::new(config(iterations), tiling());
    fresh_cfg.run_dir = Some(fresh_dir.clone());
    let fresh = run_clip(&clip, &fresh_cfg, &pool).unwrap();
    assert!(fresh.complete);
    assert_eq!(fresh.manifest.resumed, 0);

    // The input-determined manifest is byte-identical.
    assert_eq!(
        resumed.manifest.to_json(false),
        fresh.manifest.to_json(false)
    );
    assert_eq!(
        resumed.stitched.as_ref().unwrap().mains,
        fresh.stitched.as_ref().unwrap().mains
    );

    // Running again over a complete checkpoint executes nothing at all.
    let noop = run_clip(&clip, &cfg, &pool).unwrap();
    assert_eq!(noop.manifest.executed, 0);
    assert_eq!(noop.manifest.resumed, 4);
    assert_eq!(noop.manifest.to_json(false), fresh.manifest.to_json(false));

    std::fs::remove_dir_all(&base).unwrap();
}
